package hbase

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"met/internal/kv"
	"met/internal/metrics"
)

// Region is one horizontal partition of an HTable: the half-open key
// range [StartKey, EndKey). It owns a kv.Store holding its data and the
// request counters the Monitor samples.
//
// A Region is safe for concurrent use. Its identity (name, table, key
// range) is immutable; request counters are atomics so the serving hot
// path never locks; the backing store is an atomic pointer because a
// server restart swaps it (readers racing a swap see either the old
// store — whose Close makes it return kv.ErrClosed — or the new one,
// never a torn pointer); mu guards the HDFS mirror bookkeeping.
type Region struct {
	mu sync.Mutex

	name     string
	table    string
	startKey string
	endKey   string // empty = unbounded

	store    atomic.Pointer[kv.Store]
	requests metrics.AtomicCounts
	// lat holds the region-level serving latency histograms, recorded
	// by the hosting server alongside its own (see telemetry.go). Like
	// the request counters they are cumulative over the region's life,
	// surviving store swaps and moves.
	lat     opHists
	fileSeq int

	// HDFS mirror bookkeeping: which engine store files are reflected
	// in the namenode. The mirror maps engine file IDs to HDFS file
	// records and is reconciled against the store's real file stack
	// (kv.Store.FileInfos) at every sync point, so the namenode's view
	// is the engine's view — a flush racing a major compaction can no
	// longer double-count bytes, because adds and removes are computed
	// from one atomic snapshot of the stack.
	//
	// mirrorStore pins which store the IDs belong to: stats read from a
	// store just retired by a restart must not be applied to the fresh
	// store's bookkeeping. legacy holds HDFS files whose engine files no
	// longer exist in the current store (an in-memory reopen copies data
	// into a new store's memstore, so the bytes are real but no longer
	// file-backed); they keep degrading locality until a major
	// compaction purges them, exactly like post-move HFiles in HBase.
	mirrorStore *kv.Store
	mirror      map[uint64]mirrorFile
	legacy      map[string]int64

	// followers are the servers holding replica copies of this region's
	// SSTables (met/internal/replication). The master assigns them via
	// hdfs.Namenode placement, persists them in the region's catalog
	// table row, and re-picks when the set degenerates (the primary
	// moved onto a follower, or a follower left the cluster).
	followers []string
}

// mirrorFile is one engine file's HDFS reflection.
type mirrorFile struct {
	name  string
	bytes int64
}

// mirrorAdd is a pending namenode write computed by mirrorActions.
type mirrorAdd struct {
	name  string
	bytes int64
}

// NewRegion creates a region over a fresh store with the given engine
// config (derived from the hosting server's ServerConfig). With a
// durable config (OpenBackend set) the store recovers whatever its
// directory already holds.
func NewRegion(table, startKey, endKey string, storeCfg kv.Config) (*Region, error) {
	return newRegionNamed(fmt.Sprintf("%s,%s", table, startKey), table, startKey, endKey, storeCfg)
}

// newRegionNamed creates a region with an explicit name; splits use it to
// mint daughter names distinct from the parent's (real HBase encodes a
// region id for the same reason).
func newRegionNamed(name, table, startKey, endKey string, storeCfg kv.Config) (*Region, error) {
	r := &Region{
		name:     name,
		table:    table,
		startKey: startKey,
		endKey:   endKey,
		mirror:   make(map[uint64]mirrorFile),
		legacy:   make(map[string]int64),
	}
	s, err := kv.OpenStore(storeCfg)
	if err != nil {
		return nil, fmt.Errorf("hbase: open region %s: %w", name, err)
	}
	r.store.Store(s)
	r.mirrorStore = s
	return r, nil
}

// Name returns the region identifier ("table,startKey").
func (r *Region) Name() string { return r.name }

// Table returns the owning table name.
func (r *Region) Table() string { return r.table }

// StartKey returns the inclusive lower bound of the region's range.
func (r *Region) StartKey() string { return r.startKey }

// EndKey returns the exclusive upper bound ("" = unbounded).
func (r *Region) EndKey() string { return r.endKey }

// Contains reports whether key falls in the region's range.
func (r *Region) Contains(key string) bool {
	if key < r.startKey {
		return false
	}
	return r.endKey == "" || key < r.endKey
}

// Store exposes the backing engine (tests and the server use it).
func (r *Region) Store() *kv.Store { return r.store.Load() }

// Followers returns the servers replicating this region's SSTables.
func (r *Region) Followers() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.followers...)
}

// SetFollowers replaces the replica target set (master only; the change
// is persisted with the region's next table-row commit).
func (r *Region) SetFollowers(followers []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.followers = append([]string(nil), followers...)
}

// Requests returns the cumulative request counters.
func (r *Region) Requests() metrics.RequestCounts {
	return r.requests.Snapshot()
}

func (r *Region) countRead()  { r.requests.AddRead() }
func (r *Region) countWrite() { r.requests.AddWrite() }
func (r *Region) countScan()  { r.requests.AddScan() }

// DataBytes returns the approximate bytes held by the region.
func (r *Region) DataBytes() int64 { return int64(r.Store().DataBytes()) }

// Files returns the HDFS file names currently backing the region.
func (r *Region) Files() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.mirror)+len(r.legacy))
	for _, mf := range r.mirror {
		out = append(out, mf.name)
	}
	for name := range r.legacy {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// mirrorActions reconciles the HDFS mirror with store's current file
// stack, atomically deciding which namenode files to create and which to
// delete. Engine files not yet mirrored become adds; mirrored IDs the
// engine no longer has (compacted away) become removes. With purgeLegacy
// (major compaction — the reconciliation point) the legacy files are
// removed too. ok=false means store is not the store this bookkeeping
// tracks (it was retired by a concurrent restart) and nothing changed.
// At most one concurrent caller obtains each add/remove, so namenode
// operations are never duplicated.
func (r *Region) mirrorActions(store *kv.Store, purgeLegacy bool) (adds []mirrorAdd, removes []string, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if store != r.mirrorStore {
		return nil, nil, false
	}
	infos := store.FileInfos()
	live := make(map[uint64]bool, len(infos))
	for _, fi := range infos {
		live[fi.ID] = true
		if _, mirrored := r.mirror[fi.ID]; mirrored {
			continue
		}
		r.fileSeq++
		mf := mirrorFile{name: fmt.Sprintf("%s/hfile-%d", r.name, r.fileSeq), bytes: fi.Bytes}
		if mf.bytes <= 0 {
			mf.bytes = 1
		}
		r.mirror[fi.ID] = mf
		adds = append(adds, mirrorAdd{name: mf.name, bytes: mf.bytes})
	}
	for id, mf := range r.mirror {
		if !live[id] {
			delete(r.mirror, id)
			removes = append(removes, mf.name)
		}
	}
	if purgeLegacy {
		for name := range r.legacy {
			removes = append(removes, name)
		}
		r.legacy = make(map[string]int64)
	}
	return adds, removes, true
}

// resetMirror re-pins the bookkeeping to store. When the engine file IDs
// survived the store swap (durable reopen: the same directory was
// reloaded, same IDs) the mirror carries over; otherwise (in-memory
// reopen: data was copied into a fresh memstore) the existing HDFS files
// become legacy — still in the namenode, still counted for locality,
// purged at the next major compaction.
func (r *Region) resetMirror(store *kv.Store, idsPreserved bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if store == r.mirrorStore {
		return
	}
	if !idsPreserved {
		for _, mf := range r.mirror {
			r.legacy[mf.name] = mf.bytes
		}
		r.mirror = make(map[uint64]mirrorFile)
	}
	r.mirrorStore = store
}

// reopen replaces the backing store (used on server restart with a new
// configuration). With a durable config the old store is closed — its
// WAL and SSTables are released — and the new store recovers from the
// same directory, exactly the crash-recovery path but voluntary: a cold
// cache and the same data. Without durable backing, live entries are
// scan-copied into a store built with the new engine config. Either way
// the old store is sealed first, so an in-flight write either completed
// before the seal (durable: therefore fsynced or WAL-buffered and
// recovered; memory: captured by the copy) or fails with kv.ErrClosed
// without being acknowledged — no acknowledged write is ever lost.
func (r *Region) reopen(storeCfg kv.Config) error {
	old := r.Store()
	old.Seal()
	oldDurable := old.Config().OpenBackend != nil
	if storeCfg.OpenBackend != nil && oldDurable {
		// Disk-to-disk: recovery from the shared directory. The old
		// store must release its WAL and file handles before the new
		// one opens them.
		old.Close()
		ns, err := kv.OpenStore(storeCfg)
		if err != nil {
			// The directory is intact (Close is not destructive), so try
			// to restore service on the old configuration rather than
			// leaving the region wedged on a closed store while the
			// server reports healthy.
			if prev, perr := kv.OpenStore(old.Config()); perr == nil {
				r.store.Store(prev)
				r.resetMirror(prev, true)
			}
			return fmt.Errorf("hbase: reopen %s: %w", r.name, err)
		}
		r.store.Store(ns)
		r.resetMirror(ns, true)
		return nil
	}
	entries, err := old.Scan(r.startKey, r.endKey, -1)
	if err != nil {
		old.Unseal()
		return fmt.Errorf("hbase: reopen %s: %w", r.name, err)
	}
	ns, err := kv.OpenStore(storeCfg)
	if err != nil {
		old.Unseal()
		return fmt.Errorf("hbase: reopen %s: %w", r.name, err)
	}
	if err := ns.ImportEntries(entries); err != nil {
		ns.Close()
		old.Unseal()
		return fmt.Errorf("hbase: reopen %s: %w", r.name, err)
	}
	r.store.Store(ns)
	r.resetMirror(ns, false)
	old.Close()
	return nil
}
