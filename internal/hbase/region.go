package hbase

import (
	"fmt"
	"sync"

	"met/internal/kv"
	"met/internal/metrics"
)

// Region is one horizontal partition of an HTable: the half-open key
// range [StartKey, EndKey). It owns a kv.Store holding its data and the
// request counters the Monitor samples.
type Region struct {
	mu sync.Mutex

	name     string
	table    string
	startKey string
	endKey   string // empty = unbounded

	store    *kv.Store
	files    []string // HDFS file names backing this region
	requests metrics.RequestCounts
	fileSeq  int
}

// NewRegion creates a region over a fresh store with the given engine
// config (derived from the hosting server's ServerConfig).
func NewRegion(table, startKey, endKey string, storeCfg kv.Config) *Region {
	return newRegionNamed(fmt.Sprintf("%s,%s", table, startKey), table, startKey, endKey, storeCfg)
}

// newRegionNamed creates a region with an explicit name; splits use it to
// mint daughter names distinct from the parent's (real HBase encodes a
// region id for the same reason).
func newRegionNamed(name, table, startKey, endKey string, storeCfg kv.Config) *Region {
	return &Region{
		name:     name,
		table:    table,
		startKey: startKey,
		endKey:   endKey,
		store:    kv.NewStore(storeCfg),
	}
}

// Name returns the region identifier ("table,startKey").
func (r *Region) Name() string { return r.name }

// Table returns the owning table name.
func (r *Region) Table() string { return r.table }

// StartKey returns the inclusive lower bound of the region's range.
func (r *Region) StartKey() string { return r.startKey }

// EndKey returns the exclusive upper bound ("" = unbounded).
func (r *Region) EndKey() string { return r.endKey }

// Contains reports whether key falls in the region's range.
func (r *Region) Contains(key string) bool {
	if key < r.startKey {
		return false
	}
	return r.endKey == "" || key < r.endKey
}

// Store exposes the backing engine (tests and the server use it).
func (r *Region) Store() *kv.Store { return r.store }

// Requests returns the cumulative request counters.
func (r *Region) Requests() metrics.RequestCounts {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.requests
}

func (r *Region) countRead()  { r.mu.Lock(); r.requests.Reads++; r.mu.Unlock() }
func (r *Region) countWrite() { r.mu.Lock(); r.requests.Writes++; r.mu.Unlock() }
func (r *Region) countScan()  { r.mu.Lock(); r.requests.Scans++; r.mu.Unlock() }

// DataBytes returns the approximate bytes held by the region.
func (r *Region) DataBytes() int64 { return int64(r.store.DataBytes()) }

// Files returns the HDFS file names currently backing the region.
func (r *Region) Files() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.files...)
}

// nextFileName mints a unique HDFS name for a flush or compaction output.
func (r *Region) nextFileName() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fileSeq++
	return fmt.Sprintf("%s/hfile-%d", r.name, r.fileSeq)
}

func (r *Region) setFiles(files []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.files = files
}

func (r *Region) addFile(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.files = append(r.files, name)
}

// reopen replaces the backing store (used on server restart with a new
// configuration): live entries are copied into a store built with the new
// engine config. Real HBase re-reads HFiles from HDFS; the effect — a
// cold cache and the same data — is identical.
func (r *Region) reopen(storeCfg kv.Config) error {
	entries, err := r.store.Scan(r.startKey, r.endKey, -1)
	if err != nil {
		return fmt.Errorf("hbase: reopen %s: %w", r.name, err)
	}
	ns := kv.NewStore(storeCfg)
	for _, e := range entries {
		if err := ns.Put(e.Key, e.Value); err != nil {
			return fmt.Errorf("hbase: reopen %s: %w", r.name, err)
		}
	}
	r.store.Close()
	r.store = ns
	return nil
}
