package hbase

import (
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"met/internal/hdfs"
	"met/internal/kv"
	"met/internal/testutil"
)

// newCatalogCluster builds a durable cluster whose master writes the
// META catalog under dataDir.
func newCatalogCluster(t *testing.T, n int, dataDir string, cfg ServerConfig) (*Master, *Client) {
	t.Helper()
	m, err := NewDurableMaster(hdfs.NewNamenode(2), dataDir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := m.AddServer(fmt.Sprintf("rs%d", i), cfg); err != nil {
			t.Fatal(err)
		}
	}
	// Replicators keep shipping after the last Put; stop the servers
	// before the temp dir is reclaimed or RemoveAll races a tail ship.
	// (Tests that HardStop themselves are fine: Shutdown is idempotent.)
	t.Cleanup(m.HardStop)
	return m, NewClient(m)
}

// regionDirNames lists the escaped region-directory names currently on
// disk under dataDir/regions.
func regionDirNames(t *testing.T, dataDir string) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dataDir, "regions"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out
}

// crashAt runs op with the master's crash hook armed at point via the
// shared fault harness (met/internal/testutil); op must actually reach
// the point (and "die" there), or the test fails.
func crashAt(t *testing.T, m *Master, point string, op func()) {
	t.Helper()
	inj := testutil.NewInjector()
	m.crashHook = inj.Hook()
	defer func() { m.crashHook = nil }()
	testutil.CrashAt(t, inj, point, op)
}

// TestColdStartRecoversWholeCluster is the PR's acceptance criterion:
// acknowledged rows across two tables and three servers, one region
// moved, the whole cluster hard-stopped — then OpenCluster(dataDir)
// with no CreateTable or manual assignment must serve every row through
// normal client routing, reproduce Tables() and Assignment() exactly,
// and compact the moved region on its destination server's pool.
func TestColdStartRecoversWholeCluster(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.Compaction = CompactionConfig{MaxStoreFiles: 3, StallStoreFiles: 10}
	m, c := newCatalogCluster(t, 3, dir, cfg)
	if _, err := m.CreateTable("users", []string{"g", "p"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateTable("orders", []string{"m"}); err != nil {
		t.Fatal(err)
	}
	acked := map[string]map[string]string{"users": {}, "orders": {}}
	write := func(tn string, lo, hi int) {
		for i := lo; i < hi; i++ {
			k := fmt.Sprintf("%c%05d", 'a'+byte(i%26), i)
			v := fmt.Sprintf("%s/%s/v%d", tn, k, i)
			if err := c.Put(tn, k, []byte(v)); err != nil {
				t.Fatalf("put %s/%s: %v", tn, k, err)
			}
			acked[tn][k] = v
		}
	}
	write("users", 0, 300)
	write("orders", 0, 300)

	// Move one users region to a server that does not host it.
	tbl, _ := m.Table("users")
	moved := tbl.Regions()[0].Name()
	src, _ := m.HostOf(moved)
	var dst string
	for _, rs := range m.Servers() {
		if rs.Name() != src {
			dst = rs.Name()
			break
		}
	}
	if err := m.MoveRegion(moved, dst); err != nil {
		t.Fatal(err)
	}
	write("users", 300, 450)
	write("orders", 300, 450)

	preTables := m.Tables()
	preAssign := m.Assignment()
	hosts := map[string]bool{}
	for _, s := range preAssign {
		hosts[s] = true
	}
	if len(hosts) < 3 {
		t.Fatalf("acceptance setup: regions span %d servers, want 3", len(hosts))
	}
	m.HardStop()

	m2, err := OpenCluster(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m2.HardStop)
	if got := m2.Tables(); !reflect.DeepEqual(got, preTables) {
		t.Fatalf("tables after cold start = %v, want %v", got, preTables)
	}
	if got := m2.Assignment(); !reflect.DeepEqual(got, preAssign) {
		t.Fatalf("assignment after cold start = %v, want %v", got, preAssign)
	}
	c2 := NewClient(m2)
	for tn, rows := range acked {
		for k, want := range rows {
			v, err := c2.Get(tn, k)
			if err != nil || string(v) != want {
				t.Fatalf("acknowledged %s/%s lost across cold start: %q, %v", tn, k, v, err)
			}
		}
	}
	// The moved region is hosted — and really compacts — on its
	// destination. Flush first so the recovered memstore becomes an
	// SSTable and the major compaction does actual I/O rather than an
	// empty-store no-op.
	dstRS, err := m2.Server(dst)
	if err != nil {
		t.Fatal(err)
	}
	srcRS, err := m2.Server(src)
	if err != nil {
		t.Fatal(err)
	}
	var movedStore *kv.Store
	for _, r := range dstRS.Regions() {
		if r.Name() == moved {
			movedStore = r.Store()
		}
	}
	if movedStore == nil {
		t.Fatalf("moved region %s not hosted on destination %s after cold start", moved, dst)
	}
	if err := movedStore.Flush(); err != nil {
		t.Fatal(err)
	}
	if movedStore.NumFiles() == 0 {
		t.Fatalf("moved region %s recovered no data to compact", moved)
	}
	srcBefore := srcRS.CompactionStats().Compactions
	dstBefore := dstRS.CompactionStats()
	if _, err := dstRS.MajorCompact(moved); err != nil {
		t.Fatalf("moved region not serviced by destination after cold start: %v", err)
	}
	dstAfter := dstRS.CompactionStats()
	if dstAfter.Compactions <= dstBefore.Compactions || dstAfter.BytesIn <= dstBefore.BytesIn {
		t.Fatalf("destination pool did not really compact the moved region: %+v -> %+v", dstBefore, dstAfter)
	}
	if after := srcRS.CompactionStats().Compactions; after != srcBefore {
		t.Fatalf("source pool serviced the moved region: %d -> %d", srcBefore, after)
	}
}

// TestColdStartCrashPoints hard-kills each mutating operation between
// its region work and its catalog commit (and, for splits, just after
// the commit), then cold-starts: the layout and every acknowledged
// write must recover, with the interrupted operation either fully
// applied or cleanly absent — never half-applied, never leaving orphan
// region directories behind.
func TestColdStartCrashPoints(t *testing.T) {
	type fixture struct {
		m   *Master
		c   *Client
		dir string
	}
	setup := func(t *testing.T) fixture {
		dir := t.TempDir()
		m, c := newCatalogCluster(t, 2, dir, durableConfig(dir))
		if _, err := m.CreateTable("t", []string{"m"}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if err := c.Put("t", fmt.Sprintf("k%05d", i), []byte("0123456789abcdef")); err != nil {
				t.Fatal(err)
			}
		}
		return fixture{m: m, c: c, dir: dir}
	}
	verifyData := func(t *testing.T, m2 *Master) {
		c2 := NewClient(m2)
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("k%05d", i)
			if v, err := c2.Get("t", k); err != nil || string(v) != "0123456789abcdef" {
				t.Fatalf("acknowledged %s lost: %q, %v", k, v, err)
			}
		}
	}
	reopen := func(t *testing.T, f fixture) *Master {
		f.m.HardStop()
		m2, err := OpenCluster(f.dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m2.HardStop)
		return m2
	}

	t.Run("createtable-uncommitted", func(t *testing.T) {
		f := setup(t)
		crashAt(t, f.m, "createtable.regions-open", func() { f.m.CreateTable("t2", []string{"g"}) })
		m2 := reopen(t, f)
		if got := m2.Tables(); !reflect.DeepEqual(got, []string{"t"}) {
			t.Fatalf("half-created table surfaced: %v", got)
		}
		for _, d := range regionDirNames(t, f.dir) {
			if strings.HasPrefix(d, url.PathEscape("t2,")) {
				t.Fatalf("orphan directory %q survived the sweep", d)
			}
		}
		verifyData(t, m2)
		// The name is free again: creating t2 on the recovered cluster works.
		if _, err := m2.CreateTable("t2", []string{"g"}); err != nil {
			t.Fatalf("recreate after crashed create: %v", err)
		}
	})

	t.Run("moveregion-uncommitted", func(t *testing.T) {
		f := setup(t)
		tbl, _ := f.m.Table("t")
		rn := tbl.Regions()[0].Name()
		src, _ := f.m.HostOf(rn)
		dst := "rs0"
		if src == dst {
			dst = "rs1"
		}
		crashAt(t, f.m, "moveregion.moved", func() { f.m.MoveRegion(rn, dst) })
		m2 := reopen(t, f)
		if host, _ := m2.HostOf(rn); host != src {
			t.Fatalf("uncommitted move half-applied: host %q, want %q", host, src)
		}
		verifyData(t, m2)
	})

	t.Run("split-uncommitted", func(t *testing.T) {
		f := setup(t)
		tbl, _ := f.m.Table("t")
		parent := tbl.Regions()[0].Name()
		crashAt(t, f.m, "split.daughters-ready", func() { f.m.SplitRegion(parent) })
		m2 := reopen(t, f)
		t2, err := m2.Table("t")
		if err != nil {
			t.Fatal(err)
		}
		names := t2.RegionNames()
		if len(names) != 2 || names[0] != parent {
			t.Fatalf("uncommitted split half-applied: regions %v", names)
		}
		// Daughter directories (minted with a ".gen" suffix) were swept.
		for _, d := range regionDirNames(t, f.dir) {
			un, _ := url.PathUnescape(d)
			if strings.Contains(un, ".") {
				t.Fatalf("orphan daughter directory %q survived the sweep", d)
			}
		}
		verifyData(t, m2)
		// splitSeq was persisted before the daughters existed, so a
		// retried split can never collide with the crashed attempt's
		// names or directories.
		if err := m2.SplitRegion(parent); err != nil {
			t.Fatalf("split retry after crashed split: %v", err)
		}
		verifyData(t, m2)
	})

	t.Run("split-committed", func(t *testing.T) {
		f := setup(t)
		tbl, _ := f.m.Table("t")
		parent := tbl.Regions()[0].Name()
		crashAt(t, f.m, "split.committed", func() { f.m.SplitRegion(parent) })
		m2 := reopen(t, f)
		t2, err := m2.Table("t")
		if err != nil {
			t.Fatal(err)
		}
		if n := len(t2.RegionNames()); n != 3 {
			t.Fatalf("committed split lost: %d regions, want 3 (two daughters + sibling)", n)
		}
		if _, ok := m2.HostOf(parent); ok {
			t.Fatalf("committed split: parent %q still assigned", parent)
		}
		// The parent's directory was the orphan this time.
		for _, d := range regionDirNames(t, f.dir) {
			if d == url.PathEscape(parent) {
				t.Fatalf("parent directory %q survived the sweep after committed split", d)
			}
		}
		verifyData(t, m2)
	})

	t.Run("addserver-uncommitted", func(t *testing.T) {
		f := setup(t)
		crashAt(t, f.m, "addserver.registered", func() { f.m.AddServer("rs9", durableConfig(f.dir)) })
		m2 := reopen(t, f)
		if _, err := m2.Server("rs9"); !errors.Is(err, ErrUnknownServer) {
			t.Fatalf("uncommitted server surfaced after cold start: %v", err)
		}
		verifyData(t, m2)
	})

	t.Run("decommission-drained", func(t *testing.T) {
		f := setup(t)
		crashAt(t, f.m, "decommission.drained", func() { f.m.DecommissionServer("rs1") })
		m2 := reopen(t, f)
		// The drain committed region by region; the membership row was
		// never deleted — the server comes back empty, the regions stay
		// where the drain put them.
		rs1, err := m2.Server("rs1")
		if err != nil {
			t.Fatalf("mid-decommission server vanished: %v", err)
		}
		if n := rs1.NumRegions(); n != 0 {
			t.Fatalf("drained server still hosts %d regions", n)
		}
		for r, s := range m2.Assignment() {
			if s == "rs1" {
				t.Fatalf("region %q still assigned to drained server", r)
			}
		}
		verifyData(t, m2)
	})
}

// TestNewDurableMasterRefusesExistingCluster: building a fresh cluster
// over a data directory that already holds a committed layout would
// interleave two layouts in one catalog; the constructor must refuse
// and point at OpenCluster.
func TestNewDurableMasterRefusesExistingCluster(t *testing.T) {
	dir := t.TempDir()
	m, _ := newCatalogCluster(t, 1, dir, durableConfig(dir))
	m.HardStop()
	if _, err := NewDurableMaster(hdfs.NewNamenode(2), dir); err == nil {
		t.Fatal("NewDurableMaster over an existing cluster succeeded")
	}
	if m2, err := OpenCluster(dir); err != nil {
		t.Fatalf("OpenCluster over the same directory: %v", err)
	} else {
		m2.HardStop()
	}
}

// TestColdStartRecoversReprofiledServer: a reprofile issued through the
// master (the Actuator's path) must survive a cold start — the server
// comes back with the new configuration, not the one it was added with.
func TestColdStartRecoversReprofiledServer(t *testing.T) {
	dir := t.TempDir()
	m, c := newCatalogCluster(t, 2, dir, durableConfig(dir))
	if _, err := m.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := c.Put("t", fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	reprofiled := durableConfig(dir)
	reprofiled.BlockBytes = 8 << 10
	if err := m.RestartServer("rs0", reprofiled); err != nil {
		t.Fatal(err)
	}
	m.HardStop()
	m2, err := OpenCluster(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m2.HardStop)
	rs0, err := m2.Server("rs0")
	if err != nil {
		t.Fatal(err)
	}
	if got := rs0.Config(); !got.Equal(reprofiled) {
		t.Fatalf("cold start lost the reprofile: %v, want %v", got, reprofiled)
	}
	rs1, err := m2.Server("rs1")
	if err != nil {
		t.Fatal(err)
	}
	if got := rs1.Config(); !got.Equal(durableConfig(dir)) {
		t.Fatalf("untouched server's profile drifted: %v", got)
	}
	c2 := NewClient(m2)
	for i := 0; i < 50; i++ {
		if _, err := c2.Get("t", fmt.Sprintf("k%03d", i)); err != nil {
			t.Fatalf("k%03d after reprofile+coldstart: %v", i, err)
		}
	}
}

// TestCreateTablePartialFailureUnwinds: a mid-loop region-open failure
// must close and unassign every already-opened region and reclaim
// their directories — no orphaned, unreachable regions — and leave the
// name free for a retry.
func TestCreateTablePartialFailureUnwinds(t *testing.T) {
	dir := t.TempDir()
	m, _ := newCatalogCluster(t, 2, dir, durableConfig(dir))
	// Block the LAST region's directory with a regular file: regions
	// "t," and "t,g" open first and must be unwound when "t,p" fails.
	blocker := regionDataDir(dir, regionName("t", "p"))
	if err := os.MkdirAll(filepath.Dir(blocker), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateTable("t", []string{"g", "p"}); err == nil {
		t.Fatal("CreateTable succeeded over an unopenable region directory")
	}
	if got := len(m.Assignment()); got != 0 {
		t.Fatalf("failed create left %d assignments", got)
	}
	if got := m.Tables(); len(got) != 0 {
		t.Fatalf("failed create left tables %v", got)
	}
	for _, rs := range m.Servers() {
		if n := rs.NumRegions(); n != 0 {
			t.Fatalf("failed create left %d regions hosted on %s", n, rs.Name())
		}
	}
	if dirs := regionDirNames(t, dir); len(dirs) != 1 || dirs[0] != url.PathEscape(regionName("t", "p")) {
		t.Fatalf("failed create left directories %v (want only the blocker)", dirs)
	}
	// The reservation was released and the directories reclaimed:
	// removing the blocker, the same name creates cleanly.
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	tbl, err := m.CreateTable("t", []string{"g", "p"})
	if err != nil {
		t.Fatalf("retry after unwound create: %v", err)
	}
	if tbl.NumRegions() != 3 {
		t.Fatalf("retried table has %d regions, want 3", tbl.NumRegions())
	}
}

// TestCreateTableConcurrentDuplicate: two CreateTable calls for the
// same name racing each other must resolve to exactly one winner — the
// name is reserved in one critical section, so the existence check
// cannot be interleaved past. Run with -race.
func TestCreateTableConcurrentDuplicate(t *testing.T) {
	m, _ := newCluster(t, 2)
	const attempts = 8
	var wg sync.WaitGroup
	var created atomic.Int32
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := m.CreateTable("dup", []string{"m"}); err == nil {
				created.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := created.Load(); n != 1 {
		t.Fatalf("%d concurrent CreateTable calls succeeded, want exactly 1", n)
	}
	tbl, err := m.Table("dup")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRegions() != 2 {
		t.Fatalf("winner created %d regions, want 2", tbl.NumRegions())
	}
	if got := len(m.Assignment()); got != 2 {
		t.Fatalf("assignment holds %d regions, want 2", got)
	}
}
