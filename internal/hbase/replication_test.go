package hbase

import (
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"met/internal/durable"
	"met/internal/replication"
)

// flushAll flushes every hosted region's store on every server.
func flushAll(t *testing.T, m *Master) {
	t.Helper()
	for _, rs := range m.Servers() {
		for _, r := range rs.Regions() {
			if err := r.Store().Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// quarantineServerDirs renames every primary region directory — and the
// server's shared WAL directory — of the given (dead) server out of the
// way, simulating the loss of its local disk: recovery that still
// succeeds provably used the replica copies (and shipped tail) alone.
func quarantineServerDirs(t *testing.T, rs *RegionServer) {
	t.Helper()
	dd := rs.Config().DataDir
	for _, r := range rs.Regions() {
		dir := regionDataDir(dd, r.Name())
		if _, err := os.Stat(dir); err == nil {
			if err := os.Rename(dir, dir+".quarantine"); err != nil {
				t.Fatal(err)
			}
		}
	}
	wd := serverWALDir(dd, rs.Name())
	if _, err := os.Stat(wd); err == nil {
		if err := os.Rename(wd, wd+".quarantine"); err != nil {
			t.Fatal(err)
		}
	}
}

// dropShippedTails deletes the shipped WAL tail file from every replica
// directory of the dead server's regions, simulating followers that
// never received a tail frame: recovery then measures loss from the
// replica SSTables alone — the pre-tail-streaming accounting.
func dropShippedTails(t *testing.T, rs *RegionServer) {
	t.Helper()
	dd := rs.Config().DataDir
	for _, r := range rs.Regions() {
		for _, f := range r.Followers() {
			p := durable.TailFilePath(replicaDir(dd, f, r.Name()))
			if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
				t.Fatal(err)
			}
		}
	}
}

// victimAndKeys picks the server hosting table t's first region and a
// key prefix routed to that region.
func victimAndKeys(t *testing.T, m *Master, table string) (*RegionServer, string) {
	t.Helper()
	tbl, err := m.Table(table)
	if err != nil {
		t.Fatal(err)
	}
	r := tbl.Regions()[0]
	host, ok := m.HostOf(r.Name())
	if !ok {
		t.Fatalf("region %s unassigned", r.Name())
	}
	rs, err := m.Server(host)
	if err != nil {
		t.Fatal(err)
	}
	return rs, r.StartKey()
}

// TestFailoverRecoversFromReplicasAlone is the PR's acceptance
// criterion: with replication factor 2 and a clean flush, a hard-killed
// server's regions recover 100% of acknowledged rows from replica
// SSTables alone — the dead server's primary region directories are
// renamed away before recovery, so any byte served afterwards provably
// came from a follower's copy.
func TestFailoverRecoversFromReplicasAlone(t *testing.T) {
	dir := t.TempDir()
	m, c := newCatalogCluster(t, 3, dir, durableConfig(dir))
	t.Cleanup(m.HardStop)
	if _, err := m.CreateTable("t", []string{"g", "p"}); err != nil {
		t.Fatal(err)
	}
	acked := map[string]string{}
	for i := 0; i < 600; i++ {
		k := fmt.Sprintf("%c%05d", 'a'+byte(i%26), i)
		v := fmt.Sprintf("v%d", i)
		if err := c.Put("t", k, []byte(v)); err != nil {
			t.Fatal(err)
		}
		acked[k] = v
	}
	flushAll(t, m)
	m.QuiesceReplication()

	victim, _ := victimAndKeys(t, m, "t")
	victimRegions := len(victim.Regions())
	if victimRegions == 0 {
		t.Fatal("victim hosts no regions")
	}
	victim.Shutdown() // hard kill: nothing flushed or closed
	quarantineServerDirs(t, victim)

	report, err := m.RecoverServer(victim.Name())
	if err != nil {
		t.Fatalf("RecoverServer: %v", err)
	}
	if report.LostWrites != 0 {
		t.Fatalf("clean-flush failover lost %d writes, want 0 (report %+v)", report.LostWrites, report)
	}
	if len(report.Regions) != victimRegions {
		t.Fatalf("recovered %d regions, want %d", len(report.Regions), victimRegions)
	}
	for _, rec := range report.Regions {
		if rec.ReplicaFiles == 0 {
			t.Fatalf("region %s recovered with no replica files — nothing was actually shipped", rec.Region)
		}
	}
	if _, err := m.Server(victim.Name()); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("dead server still a member: %v", err)
	}
	for rn, host := range m.Assignment() {
		if host == victim.Name() {
			t.Fatalf("region %s still assigned to the dead server", rn)
		}
	}
	for k, want := range acked {
		v, err := c.Get("t", k)
		if err != nil || string(v) != want {
			t.Fatalf("acknowledged %s lost in failover: %q, %v", k, v, err)
		}
	}
	// The cluster keeps working: new writes land and replicate.
	if err := c.Put("t", "zzz-post", []byte("alive")); err != nil {
		t.Fatalf("put after failover: %v", err)
	}

	// And the recovered layout survives a full cold start.
	m.HardStop()
	m2, err := OpenCluster(dir)
	if err != nil {
		t.Fatalf("cold start after failover: %v", err)
	}
	t.Cleanup(m2.HardStop)
	c2 := NewClient(m2)
	for k, want := range acked {
		v, err := c2.Get("t", k)
		if err != nil || string(v) != want {
			t.Fatalf("row %s lost across failover+coldstart: %q, %v", k, v, err)
		}
	}
	if _, err := m2.Server(victim.Name()); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("dead server resurrected by cold start: %v", err)
	}
}

// TestFailoverLossAccounting kills a server with a non-empty memstore
// AND deletes the shipped tails, so recovery sees replica SSTables
// alone: RecoverServer must report exactly the
// acknowledged-but-unreplicated writes as lost, every replicated row
// must be readable, and the lost rows must be absent (not silently
// resurrected from the dead disk).
func TestFailoverLossAccounting(t *testing.T) {
	dir := t.TempDir()
	m, c := newCatalogCluster(t, 3, dir, durableConfig(dir))
	t.Cleanup(m.HardStop)
	if _, err := m.CreateTable("t", []string{"g", "p"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("%c%05d", 'a'+byte(i%26), i)
		if err := c.Put("t", k, []byte("replicated")); err != nil {
			t.Fatal(err)
		}
	}
	flushAll(t, m)
	m.QuiesceReplication()

	victim, prefix := victimAndKeys(t, m, "t")
	// Unreplicated tail: acknowledged writes routed to the victim's
	// first region, never flushed, never shipped.
	const lost = 37
	var lostKeys []string
	for i := 0; i < lost; i++ {
		// "0" sorts before any split key, keeping the key inside the
		// victim's first region whatever its bounds.
		k := fmt.Sprintf("%s0unflushed%04d", prefix, i)
		if err := c.Put("t", k, []byte("doomed")); err != nil {
			t.Fatal(err)
		}
		lostKeys = append(lostKeys, k)
	}
	victim.Shutdown()
	quarantineServerDirs(t, victim)
	dropShippedTails(t, victim)

	report, err := m.RecoverServer(victim.Name())
	if err != nil {
		t.Fatalf("RecoverServer: %v", err)
	}
	if report.LostWrites != lost {
		t.Fatalf("reported %d lost writes, want exactly %d (report %+v)", report.LostWrites, lost, report)
	}
	// Every replicated row is readable; every lost row is absent.
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("%c%05d", 'a'+byte(i%26), i)
		if v, err := c.Get("t", k); err != nil || string(v) != "replicated" {
			t.Fatalf("replicated row %s unreadable after failover: %q, %v", k, v, err)
		}
	}
	for _, k := range lostKeys {
		if _, err := c.Get("t", k); !errors.Is(err, ErrNotFound) {
			t.Fatalf("lost row %s resurrected (or errored oddly): %v", k, err)
		}
	}
}

// TestFailoverZeroLossRequiresCleanFlush is the contrapositive check on
// the accounting: without the shipped tail (deleted here) and without a
// clean flush, the loss is the memstore and must be reported as
// non-zero.
func TestFailoverZeroLossRequiresCleanFlush(t *testing.T) {
	dir := t.TempDir()
	m, c := newCatalogCluster(t, 2, dir, durableConfig(dir))
	t.Cleanup(m.HardStop)
	if _, err := m.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := c.Put("t", fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// No flush, no quiesce: everything sits in the memstore.
	tbl, _ := m.Table("t")
	host, _ := m.HostOf(tbl.Regions()[0].Name())
	victim, _ := m.Server(host)
	victim.Shutdown()
	quarantineServerDirs(t, victim)
	dropShippedTails(t, victim)
	report, err := m.RecoverServer(victim.Name())
	if err != nil {
		t.Fatal(err)
	}
	if report.LostWrites != 40 {
		t.Fatalf("unflushed kill reported %d lost, want 40", report.LostWrites)
	}
}

// TestFailoverTailStreamingZeroLossHotMemstore is the tentpole's
// acceptance criterion: a server hard-killed with a deliberately
// unflushed memstore loses NOTHING, because every acknowledged write's
// commit fsync made it into the shared WAL's tail and the replicator
// shipped that tail to the followers before the kill (the quiesce is
// the barrier). Recovery replays the shipped tail over the replica
// SSTables; the dead server's own directories — regions AND WAL — are
// quarantined first, so the recovered rows provably came from the
// followers' copies.
func TestFailoverTailStreamingZeroLossHotMemstore(t *testing.T) {
	dir := t.TempDir()
	m, c := newCatalogCluster(t, 3, dir, durableConfig(dir))
	t.Cleanup(m.HardStop)
	if _, err := m.CreateTable("t", []string{"g", "p"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("%c%05d", 'a'+byte(i%26), i)
		if err := c.Put("t", k, []byte("flushed")); err != nil {
			t.Fatal(err)
		}
	}
	flushAll(t, m)
	m.QuiesceReplication()

	victim, prefix := victimAndKeys(t, m, "t")
	// Hot memstore: acknowledged writes routed to the victim's first
	// region, deliberately never flushed. Their commit fsyncs put them
	// in the shared WAL's synced tail; the quiesce ships that tail.
	const hot = 33
	var hotKeys []string
	for i := 0; i < hot; i++ {
		k := fmt.Sprintf("%s0hot%04d", prefix, i)
		if err := c.Put("t", k, []byte("tail-streamed")); err != nil {
			t.Fatal(err)
		}
		hotKeys = append(hotKeys, k)
	}
	m.QuiesceReplication()
	victim.Shutdown()
	quarantineServerDirs(t, victim)

	report, err := m.RecoverServer(victim.Name())
	if err != nil {
		t.Fatalf("RecoverServer: %v", err)
	}
	if report.LostWrites != 0 {
		t.Fatalf("hot-memstore failover lost %d writes, want 0 (report %+v)", report.LostWrites, report)
	}
	tailed := 0
	for _, rec := range report.Regions {
		tailed += rec.TailWrites
	}
	if tailed < hot {
		t.Fatalf("tail replay covered %d writes, want at least the %d unflushed ones", tailed, hot)
	}
	for _, k := range hotKeys {
		v, err := c.Get("t", k)
		if err != nil || string(v) != "tail-streamed" {
			t.Fatalf("unflushed acknowledged row %s lost: %q, %v", k, v, err)
		}
	}
	// The recovered layout (tail rows included) survives a cold start.
	m.HardStop()
	m2, err := OpenCluster(dir)
	if err != nil {
		t.Fatalf("cold start after tail-streamed failover: %v", err)
	}
	t.Cleanup(m2.HardStop)
	c2 := NewClient(m2)
	for _, k := range hotKeys {
		v, err := c2.Get("t", k)
		if err != nil || string(v) != "tail-streamed" {
			t.Fatalf("tail-streamed row %s lost across cold start: %q, %v", k, v, err)
		}
	}
}

// TestFailoverTornShippedTail corrupts a shipped tail mid-frame: the
// replay must apply the intact prefix, report the tear, and recovery
// must still complete with the loss bounded by the torn suffix.
func TestFailoverTornShippedTail(t *testing.T) {
	dir := t.TempDir()
	m, c := newCatalogCluster(t, 2, dir, durableConfig(dir))
	t.Cleanup(m.HardStop)
	if _, err := m.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := c.Put("t", fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// No flush: everything lives in the tail. Ship it, then tear the
	// shipped copy by appending a frame header that promises more
	// payload than follows (a torn write on the follower's disk).
	m.QuiesceReplication()
	tbl, _ := m.Table("t")
	r := tbl.Regions()[0]
	host, _ := m.HostOf(r.Name())
	victim, _ := m.Server(host)
	torn := 0
	for _, f := range r.Followers() {
		p := durable.TailFilePath(replicaDir(dir, f, r.Name()))
		if _, err := os.Stat(p); err != nil {
			continue
		}
		fh, err := os.OpenFile(p, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fh.Write([]byte{200, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 9}); err != nil {
			t.Fatal(err)
		}
		fh.Close()
		torn++
	}
	if torn == 0 {
		t.Fatal("no shipped tail found to tear — tail streaming never ran")
	}
	victim.Shutdown()
	quarantineServerDirs(t, victim)
	report, err := m.RecoverServer(victim.Name())
	if err != nil {
		t.Fatalf("RecoverServer over torn tail: %v", err)
	}
	if report.LostWrites != 0 {
		t.Fatalf("torn trailing frame lost %d writes, want 0 (intact prefix holds all 25)", report.LostWrites)
	}
	if len(report.Regions) != 1 || !report.Regions[0].TailTorn {
		t.Fatalf("tear not reported: %+v", report.Regions)
	}
	for i := 0; i < 25; i++ {
		k := fmt.Sprintf("k%03d", i)
		if v, err := c.Get("t", k); err != nil || string(v) != "v" {
			t.Fatalf("row %s lost under torn tail: %q, %v", k, v, err)
		}
	}
}

// TestRecoverServerRefusesRunning: failover of a live server would fork
// its regions; it must be refused.
func TestRecoverServerRefusesRunning(t *testing.T) {
	dir := t.TempDir()
	m, _ := newCatalogCluster(t, 2, dir, durableConfig(dir))
	t.Cleanup(m.HardStop)
	if _, err := m.RecoverServer("rs0"); !errors.Is(err, ErrServerStillRunning) {
		t.Fatalf("recovering a running server: %v", err)
	}
}

// TestFailoverCrashPoints kills the recovery itself at its commit
// points; a cold start must land in a consistent layout either side,
// and re-running RecoverServer must finish the job.
func TestFailoverCrashPoints(t *testing.T) {
	setup := func(t *testing.T) (*Master, *Client, string, *RegionServer) {
		dir := t.TempDir()
		m, c := newCatalogCluster(t, 3, dir, durableConfig(dir))
		if _, err := m.CreateTable("t", []string{"g", "p"}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			if err := c.Put("t", fmt.Sprintf("%c%05d", 'a'+byte(i%26), i), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		flushAll(t, m)
		m.QuiesceReplication()
		victim, _ := victimAndKeys(t, m, "t")
		victim.Shutdown()
		return m, c, dir, victim
	}
	verify := func(t *testing.T, m2 *Master) {
		c2 := NewClient(m2)
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("%c%05d", 'a'+byte(i%26), i)
			if v, err := c2.Get("t", k); err != nil || string(v) != "v" {
				t.Fatalf("row %s lost: %q, %v", k, v, err)
			}
		}
	}

	t.Run("mid-reassignment", func(t *testing.T) {
		m, _, dir, victim := setup(t)
		crashAt(t, m, "recoverserver.region-recovered", func() { m.RecoverServer(victim.Name()) })
		m.HardStop()
		m2, err := OpenCluster(dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m2.HardStop)
		// Consistent partial recovery: the committed region lives under
		// its new name on a follower; the rest cold-started back onto
		// the revived member. Nothing is lost, nothing doubled.
		verify(t, m2)
		recovered := 0
		for rn, host := range m2.Assignment() {
			if host == victim.Name() && strings.Contains(rn, ".") {
				t.Fatalf("recovered region %s assigned back to the dead server", rn)
			}
			if strings.Contains(rn, ".") {
				recovered++
			}
		}
		if recovered == 0 {
			t.Fatal("no region committed before the crash point")
		}
		// Re-run finishes: stop the revived member and recover again.
		rs, err := m2.Server(victim.Name())
		if err != nil {
			t.Fatalf("mid-recovery member vanished: %v", err)
		}
		rs.Shutdown()
		if _, err := m2.RecoverServer(victim.Name()); err != nil {
			t.Fatalf("re-run after crashed recovery: %v", err)
		}
		verify(t, m2)
		if _, err := m2.Server(victim.Name()); !errors.Is(err, ErrUnknownServer) {
			t.Fatalf("server survived completed recovery: %v", err)
		}
	})

	// Crash between the tail replay and the table-row commit (the
	// fault-injection harness's simulated kill): the replayed tail is
	// durable in the destination's shared WAL but uncommitted. A cold
	// start revives the dead member — whose own WAL replay still holds
	// the unflushed writes — and a re-run recovery replays the shipped
	// tail again, idempotently.
	t.Run("mid-tail-replay", func(t *testing.T) {
		dir := t.TempDir()
		m, c := newCatalogCluster(t, 3, dir, durableConfig(dir))
		t.Cleanup(m.HardStop)
		if _, err := m.CreateTable("t", []string{"g", "p"}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			if err := c.Put("t", fmt.Sprintf("%c%05d", 'a'+byte(i%26), i), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		flushAll(t, m)
		m.QuiesceReplication()
		victim, prefix := victimAndKeys(t, m, "t")
		var hotKeys []string
		for i := 0; i < 20; i++ {
			k := fmt.Sprintf("%s0hot%04d", prefix, i)
			if err := c.Put("t", k, []byte("tail")); err != nil {
				t.Fatal(err)
			}
			hotKeys = append(hotKeys, k)
		}
		m.QuiesceReplication()
		victim.Shutdown()
		crashAt(t, m, "recoverserver.tail-replayed", func() { m.RecoverServer(victim.Name()) })
		m.HardStop()
		m2, err := OpenCluster(dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m2.HardStop)
		c2 := NewClient(m2)
		// The revived member's shared WAL replay restored the hot rows.
		for _, k := range hotKeys {
			if v, err := c2.Get("t", k); err != nil || string(v) != "tail" {
				t.Fatalf("hot row %s lost across crashed recovery + cold start: %q, %v", k, v, err)
			}
		}
		// Re-run the failover to completion: the tail replays again onto
		// a fresh generation, with zero loss and no duplication.
		rs, err := m2.Server(victim.Name())
		if err != nil {
			t.Fatalf("mid-recovery member vanished: %v", err)
		}
		rs.Shutdown()
		quarantineServerDirs(t, rs)
		report, err := m2.RecoverServer(victim.Name())
		if err != nil {
			t.Fatalf("re-run after mid-tail crash: %v", err)
		}
		if report.LostWrites != 0 {
			t.Fatalf("re-run lost %d writes, want 0 (report %+v)", report.LostWrites, report)
		}
		for _, k := range hotKeys {
			if v, err := c2.Get("t", k); err != nil || string(v) != "tail" {
				t.Fatalf("hot row %s lost after re-run recovery: %q, %v", k, v, err)
			}
		}
	})

	t.Run("before-membership-drop", func(t *testing.T) {
		m, _, dir, victim := setup(t)
		crashAt(t, m, "recoverserver.reassigned", func() { m.RecoverServer(victim.Name()) })
		m.HardStop()
		m2, err := OpenCluster(dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m2.HardStop)
		verify(t, m2)
		// Every region was committed off the dead server; only the
		// membership row survived — the server comes back empty, like a
		// crash mid-decommission.
		rs, err := m2.Server(victim.Name())
		if err != nil {
			t.Fatalf("member vanished without its drop committing: %v", err)
		}
		if n := rs.NumRegions(); n != 0 {
			t.Fatalf("failed-over server still hosts %d regions", n)
		}
		rs.Shutdown()
		if _, err := m2.RecoverServer(victim.Name()); err != nil {
			t.Fatalf("re-run to finish the drop: %v", err)
		}
		if _, err := m2.Server(victim.Name()); !errors.Is(err, ErrUnknownServer) {
			t.Fatalf("server survived re-run: %v", err)
		}
	})
}

// TestReplicaCrashDebrisIsSweptAndHarmless covers the "replica file
// copied but not committed" and "follower mid-copy" crash states: a
// torn .tmp copy and an orphan replica directory (for a region no table
// row references) are synthesized on disk — exactly what a kill
// mid-ship leaves — then the cluster hard-stops. OpenCluster must sweep
// the orphan, the replicator must clean the .tmp, and failover from
// that replica directory must still work.
func TestReplicaCrashDebrisIsSweptAndHarmless(t *testing.T) {
	dir := t.TempDir()
	m, c := newCatalogCluster(t, 3, dir, durableConfig(dir))
	if _, err := m.CreateTable("t", []string{"g", "p"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := c.Put("t", fmt.Sprintf("%c%05d", 'a'+byte(i%26), i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	flushAll(t, m)
	m.QuiesceReplication()

	// Synthesize kill-mid-copy debris inside a live replica directory,
	// plus a whole orphan replica dir for a region that does not exist.
	tbl, _ := m.Table("t")
	r0 := tbl.Regions()[0]
	followers := r0.Followers()
	if len(followers) == 0 {
		t.Fatal("region has no followers")
	}
	liveReplica := replicaDir(dir, followers[0], r0.Name())
	torn := filepath.Join(liveReplica, "sst-0000000099999999.sst.tmp")
	if err := os.WriteFile(torn, []byte("torn copy"), 0o644); err != nil {
		t.Fatal(err)
	}
	orphan := replicaDir(dir, followers[0], "t,nonexistent")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(orphan, "sst-0000000000000001.sst"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	m.HardStop()
	m2, err := OpenCluster(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m2.HardStop)
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan replica directory survived the sweep: %v", err)
	}
	// The torn tmp is cleaned at the next reconciliation.
	c2 := NewClient(m2)
	for i := 0; i < 50; i++ {
		if err := c2.Put("t", fmt.Sprintf("a9%04d", i), []byte("post")); err != nil {
			t.Fatal(err)
		}
	}
	flushAll(t, m2)
	m2.QuiesceReplication()
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn replica copy survived reconciliation: %v", err)
	}
	// The replica is still a valid failover source.
	host, _ := m2.HostOf(tbl.Regions()[0].Name())
	victim, err := m2.Server(host)
	if err != nil {
		t.Fatal(err)
	}
	victim.Shutdown()
	quarantineServerDirs(t, victim)
	report, err := m2.RecoverServer(victim.Name())
	if err != nil {
		t.Fatal(err)
	}
	if report.LostWrites != 0 {
		t.Fatalf("failover over swept debris lost %d writes", report.LostWrites)
	}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("%c%05d", 'a'+byte(i%26), i)
		if _, err := c2.Get("t", k); err != nil {
			t.Fatalf("row %s lost: %v", k, err)
		}
	}
}

// TestSnapshotRestoreRoundTrip: a committed snapshot restores the table
// to its exact point-in-time contents — later writes gone, deleted rows
// back — and the restored regions replicate like any others.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, c := newCatalogCluster(t, 3, dir, durableConfig(dir))
	t.Cleanup(m.HardStop)
	if _, err := m.CreateTable("t", []string{"m"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := c.Put("t", fmt.Sprintf("k%05d", i), []byte("snapshotted")); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Snapshot("t", "before"); err != nil {
		t.Fatal(err)
	}
	if names, err := m.Snapshots("t"); err != nil || len(names) != 1 || names[0] != "before" {
		t.Fatalf("Snapshots() = %v, %v", names, err)
	}
	if err := m.Snapshot("t", "before"); !errors.Is(err, ErrSnapshotExists) {
		t.Fatalf("duplicate snapshot name: %v", err)
	}
	// Mutate after the snapshot: overwrite, add, delete.
	for i := 0; i < 50; i++ {
		if err := c.Put("t", fmt.Sprintf("k%05d", i), []byte("overwritten")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Put("t", "new-row", []byte("post-snapshot")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("t", "k00100"); err != nil {
		t.Fatal(err)
	}

	if err := m.RestoreSnapshot("t", "before"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%05d", i)
		v, err := c.Get("t", k)
		if err != nil || string(v) != "snapshotted" {
			t.Fatalf("restored row %s = %q, %v; want the snapshot value", k, v, err)
		}
	}
	if _, err := c.Get("t", "new-row"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-snapshot row survived restore: %v", err)
	}
	// Restored regions carry followers and keep replicating; a failover
	// on the restored table works.
	flushAll(t, m)
	m.QuiesceReplication()
	victim, _ := victimAndKeys(t, m, "t")
	victim.Shutdown()
	quarantineServerDirs(t, victim)
	report, err := m.RecoverServer(victim.Name())
	if err != nil {
		t.Fatal(err)
	}
	if report.LostWrites != 0 {
		t.Fatalf("failover on restored table lost %d writes", report.LostWrites)
	}
	if v, err := c.Get("t", "k00000"); err != nil || string(v) != "snapshotted" {
		t.Fatalf("restored row lost after failover: %q, %v", v, err)
	}

	// The whole thing cold-starts: restored layout, snapshot still
	// listed, data intact.
	m.HardStop()
	m2, err := OpenCluster(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m2.HardStop)
	if names, err := m2.Snapshots("t"); err != nil || len(names) != 1 {
		t.Fatalf("snapshot manifest lost across cold start: %v, %v", names, err)
	}
	c2 := NewClient(m2)
	if v, err := c2.Get("t", "k00199"); err != nil || string(v) != "snapshotted" {
		t.Fatalf("restored row lost across cold start: %q, %v", v, err)
	}
}

// TestSnapshotRestoreCrashPoints drives the snapshot and restore commit
// points through the fault harness: on the uncommitted side the
// operation is cleanly absent and its directories are swept; on the
// committed side it is fully applied and the superseded directories are
// the orphans.
func TestSnapshotRestoreCrashPoints(t *testing.T) {
	setup := func(t *testing.T) (*Master, *Client, string) {
		dir := t.TempDir()
		m, c := newCatalogCluster(t, 2, dir, durableConfig(dir))
		if _, err := m.CreateTable("t", []string{"m"}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if err := c.Put("t", fmt.Sprintf("k%05d", i), []byte("base")); err != nil {
				t.Fatal(err)
			}
		}
		return m, c, dir
	}
	reopen := func(t *testing.T, m *Master, dir string) *Master {
		m.HardStop()
		m2, err := OpenCluster(dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m2.HardStop)
		return m2
	}
	verifyBase := func(t *testing.T, m2 *Master, want string) {
		c2 := NewClient(m2)
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("k%05d", i)
			if v, err := c2.Get("t", k); err != nil || string(v) != want {
				t.Fatalf("row %s = %q, %v; want %q", k, v, err, want)
			}
		}
	}

	t.Run("snapshot-uncommitted", func(t *testing.T) {
		m, _, dir := setup(t)
		crashAt(t, m, "snapshot.files-copied", func() { m.Snapshot("t", "s1") })
		m2 := reopen(t, m, dir)
		if names, err := m2.Snapshots("t"); err != nil || len(names) != 0 {
			t.Fatalf("uncommitted snapshot surfaced: %v, %v", names, err)
		}
		if _, err := os.Stat(snapshotDir(dir, "t", "s1")); !os.IsNotExist(err) {
			t.Fatalf("uncommitted snapshot archive survived the sweep: %v", err)
		}
		verifyBase(t, m2, "base")
		// The name is free: retaking the snapshot works.
		if err := m2.Snapshot("t", "s1"); err != nil {
			t.Fatalf("retake after crashed snapshot: %v", err)
		}
	})

	t.Run("snapshot-committed", func(t *testing.T) {
		m, _, dir := setup(t)
		crashAt(t, m, "snapshot.committed", func() { m.Snapshot("t", "s1") })
		m2 := reopen(t, m, dir)
		// The catalog row landed before the crash: the snapshot is
		// visible, its archive survives the sweep, and it restores.
		if names, err := m2.Snapshots("t"); err != nil || len(names) != 1 || names[0] != "s1" {
			t.Fatalf("committed snapshot not listed: %v, %v", names, err)
		}
		if _, err := os.Stat(snapshotDir(dir, "t", "s1")); err != nil {
			t.Fatalf("committed snapshot archive missing: %v", err)
		}
		if err := m2.RestoreSnapshot("t", "s1"); err != nil {
			t.Fatalf("restore of committed snapshot: %v", err)
		}
		verifyBase(t, m2, "base")
	})

	t.Run("restore-uncommitted", func(t *testing.T) {
		m, c, dir := setup(t)
		if err := m.Snapshot("t", "s1"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if err := c.Put("t", fmt.Sprintf("k%05d", i), []byte("after")); err != nil {
				t.Fatal(err)
			}
		}
		crashAt(t, m, "restore.regions-ready", func() { m.RestoreSnapshot("t", "s1") })
		m2 := reopen(t, m, dir)
		// The current table won: post-snapshot writes intact, the
		// seeded restore directories swept.
		verifyBase(t, m2, "after")
		for _, d := range regionDirNames(t, dir) {
			un, _ := url.PathUnescape(d)
			if strings.Contains(un, ".") {
				t.Fatalf("uncommitted restore directory %q survived the sweep", d)
			}
		}
	})

	t.Run("restore-committed", func(t *testing.T) {
		m, c, dir := setup(t)
		if err := m.Snapshot("t", "s1"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if err := c.Put("t", fmt.Sprintf("k%05d", i), []byte("after")); err != nil {
				t.Fatal(err)
			}
		}
		tbl, _ := m.Table("t")
		oldNames := tbl.RegionNames()
		crashAt(t, m, "restore.committed", func() { m.RestoreSnapshot("t", "s1") })
		m2 := reopen(t, m, dir)
		// The restore won: snapshot contents serve, and the superseded
		// regions' directories are the orphans.
		verifyBase(t, m2, "base")
		for _, d := range regionDirNames(t, dir) {
			un, _ := url.PathUnescape(d)
			for _, old := range oldNames {
				if un == old {
					t.Fatalf("superseded region directory %q survived the sweep", d)
				}
			}
		}
	})
}

// TestRecoverServerPartialFailureResumes: a recovery that fails midway
// (an I/O error on one region) leaves the committed regions failed
// over, keeps the dead server a member so the caller can retry, and
// the retry recovers ONLY the remaining regions — never seeding empty
// duplicates of regions whose replicas were already consumed.
func TestRecoverServerPartialFailureResumes(t *testing.T) {
	dir := t.TempDir()
	m, c := newCatalogCluster(t, 3, dir, durableConfig(dir))
	t.Cleanup(m.HardStop)
	if _, err := m.CreateTable("t", []string{"g", "p"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateTable("u", []string{"g", "p"}); err != nil {
		t.Fatal(err)
	}
	for _, tn := range []string{"t", "u"} {
		for i := 0; i < 300; i++ {
			if err := c.Put(tn, fmt.Sprintf("%c%05d", 'a'+byte(i%26), i), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
	}
	flushAll(t, m)
	m.QuiesceReplication()

	// Two tables × one region per server: the victim hosts 2 regions.
	victim, _ := victimAndKeys(t, m, "t")
	regions := victim.Regions()
	if len(regions) < 2 {
		t.Fatalf("victim hosts %d regions, need >= 2", len(regions))
	}
	victim.Shutdown()
	quarantineServerDirs(t, victim)

	// Block the SECOND region's recovery: its gen-suffixed directory
	// path is occupied by a regular file, so MkdirAll fails after the
	// first region has already committed.
	m.mu.Lock()
	gen := m.splitSeq + 1
	m.mu.Unlock()
	blocker := regionDataDir(dir, fmt.Sprintf("%s.%d", regions[1].Name(), gen))
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	report1, err := m.RecoverServer(victim.Name())
	if err == nil {
		t.Fatal("partial recovery reported success over a blocked region directory")
	}
	if len(report1.Regions) != 1 {
		t.Fatalf("partial recovery committed %d regions, want 1", len(report1.Regions))
	}
	if _, err := m.Server(victim.Name()); err != nil {
		t.Fatalf("partially recovered server lost its membership (retry impossible): %v", err)
	}

	// Retry after clearing the blocker: only the remaining region is
	// recovered — the first one's consumed replicas are not re-read.
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	report2, err := m.RecoverServer(victim.Name())
	if err != nil {
		t.Fatalf("retry after partial recovery: %v", err)
	}
	if len(report2.Regions) != 1 {
		t.Fatalf("retry recovered %d regions, want exactly the 1 remaining", len(report2.Regions))
	}
	if report1.LostWrites != 0 || report2.LostWrites != 0 {
		t.Fatalf("clean-flush partial recovery lost writes: %d + %d", report1.LostWrites, report2.LostWrites)
	}
	if _, err := m.Server(victim.Name()); !errors.Is(err, ErrUnknownServer) {
		t.Fatalf("server survived completed retry: %v", err)
	}
	for _, tn := range []string{"t", "u"} {
		for i := 0; i < 300; i++ {
			k := fmt.Sprintf("%c%05d", 'a'+byte(i%26), i)
			if _, err := c.Get(tn, k); err != nil {
				t.Fatalf("row %s/%s lost across partial recovery: %v", tn, k, err)
			}
		}
	}
	// No phantom duplicate regions: every assigned region belongs to a
	// table and is hosted where the assignment says.
	for rn, host := range m.Assignment() {
		rs, err := m.Server(host)
		if err != nil {
			t.Fatalf("region %s assigned to unknown server %s", rn, host)
		}
		found := false
		for _, r := range rs.Regions() {
			if r.Name() == rn {
				found = true
			}
		}
		if !found {
			t.Fatalf("region %s assigned to %s but not hosted there", rn, host)
		}
	}
}

// TestRecoveredRegionReplicatesAgain: after failover the recovered
// region has fresh followers and ships to them, so a second failure is
// survivable too.
func TestRecoveredRegionReplicatesAgain(t *testing.T) {
	dir := t.TempDir()
	m, c := newCatalogCluster(t, 3, dir, durableConfig(dir))
	t.Cleanup(m.HardStop)
	if _, err := m.CreateTable("t", []string{"g", "p"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := c.Put("t", fmt.Sprintf("%c%05d", 'a'+byte(i%26), i), []byte("v1")); err != nil {
			t.Fatal(err)
		}
	}
	flushAll(t, m)
	m.QuiesceReplication()
	victim1, _ := victimAndKeys(t, m, "t")
	victim1.Shutdown()
	quarantineServerDirs(t, victim1)
	if _, err := m.RecoverServer(victim1.Name()); err != nil {
		t.Fatal(err)
	}
	// Write more, flush, quiesce — then kill the server now hosting the
	// recovered region.
	for i := 0; i < 100; i++ {
		if err := c.Put("t", fmt.Sprintf("%c9%04d", 'a'+byte(i%26), i), []byte("v2")); err != nil {
			t.Fatal(err)
		}
	}
	flushAll(t, m)
	m.QuiesceReplication()
	victim2, _ := victimAndKeys(t, m, "t")
	victim2.Shutdown()
	quarantineServerDirs(t, victim2)
	report, err := m.RecoverServer(victim2.Name())
	if err != nil {
		t.Fatal(err)
	}
	if report.LostWrites != 0 {
		t.Fatalf("second failover lost %d writes", report.LostWrites)
	}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("%c%05d", 'a'+byte(i%26), i)
		if _, err := c.Get("t", k); err != nil {
			t.Fatalf("row %s lost after second failover: %v", k, err)
		}
	}
}

// TestMoveRePicksDegenerateFollowers: moving a region onto its own
// follower re-picks the follower set, so a primary never "replicates"
// to itself.
func TestMoveRePicksDegenerateFollowers(t *testing.T) {
	dir := t.TempDir()
	m, _ := newCatalogCluster(t, 3, dir, durableConfig(dir))
	t.Cleanup(m.HardStop)
	if _, err := m.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	tbl, _ := m.Table("t")
	r := tbl.Regions()[0]
	followers := r.Followers()
	if len(followers) == 0 {
		t.Fatal("no followers assigned at create")
	}
	if err := m.MoveRegion(r.Name(), followers[0]); err != nil {
		t.Fatal(err)
	}
	for _, f := range r.Followers() {
		if f == followers[0] {
			t.Fatalf("primary %s is its own follower after move: %v", followers[0], r.Followers())
		}
	}
	if len(r.Followers()) == 0 {
		t.Fatal("re-pick produced no followers")
	}
}

// TestReplicationShipsThroughStack is the end-to-end plumbing check:
// client writes on a durable cluster produce real, byte-complete
// replica directories for every region with data, via the flush hook
// and the OnCompacted fan-out, without any explicit flush calls.
func TestReplicationShipsThroughStack(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.Compaction = CompactionConfig{MaxStoreFiles: 3, StallStoreFiles: 10}
	m, c := newCatalogCluster(t, 2, dir, cfg)
	t.Cleanup(m.HardStop)
	if _, err := m.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 512)
	for i := 0; i < 2000; i++ {
		if err := c.Put("t", fmt.Sprintf("k%06d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	m.QuiesceReplication()
	tbl, _ := m.Table("t")
	r := tbl.Regions()[0]
	if r.Store().NumFiles() == 0 {
		t.Fatal("test volume produced no SSTables")
	}
	followers := r.Followers()
	if len(followers) != 1 {
		t.Fatalf("replication factor 2 should yield 1 follower, got %v", followers)
	}
	ids, err := replication.ListSSTables(replicaDir(dir, followers[0], r.Name()))
	if err != nil {
		t.Fatal(err)
	}
	// The replica must cover the primary's current stack (it may
	// briefly also hold files newer notifications will retire).
	have := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		have[id] = true
	}
	for _, fi := range r.Store().FileInfos() {
		if !have[fi.ID] {
			t.Fatalf("primary file %d missing from replica %v", fi.ID, ids)
		}
	}
	st := func() int64 {
		var sum int64
		for _, rs := range m.Servers() {
			sum += rs.ReplicationStats().BytesShipped
		}
		return sum
	}()
	if st == 0 {
		t.Fatal("no bytes accounted as shipped")
	}
}
