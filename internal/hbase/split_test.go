package hbase

import (
	"fmt"
	"testing"

	"met/internal/hdfs"
	"met/internal/metrics"
	"met/internal/sim"
)

func TestSplitRegionKeepsData(t *testing.T) {
	m, c := newCluster(t, 2)
	tbl, _ := m.CreateTable("t", nil) // single region
	for i := 0; i < 200; i++ {
		c.Put("t", fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	parent := tbl.RegionNames()[0]
	if err := m.SplitRegion(parent); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRegions() != 2 {
		t.Fatalf("regions = %d, want 2", tbl.NumRegions())
	}
	// Daughters partition the key space at the median.
	regions := tbl.Regions()
	if regions[0].EndKey() != regions[1].StartKey() {
		t.Fatalf("daughters not adjacent: [%s,%s) [%s,%s)",
			regions[0].StartKey(), regions[0].EndKey(), regions[1].StartKey(), regions[1].EndKey())
	}
	// Every key still readable; routing handles the new boundaries.
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%03d", i)
		v, err := c.Get("t", key)
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) = %q, %v", key, v, err)
		}
	}
	// Scans cross the new boundary seamlessly.
	got, err := c.Scan("t", "", "", -1)
	if err != nil || len(got) != 200 {
		t.Fatalf("scan = %d entries, %v", len(got), err)
	}
	// The parent's assignment is gone; the daughters share its host.
	if _, ok := m.HostOf(parent); ok {
		t.Fatal("parent still assigned")
	}
	h0, _ := m.HostOf(regions[0].Name())
	h1, _ := m.HostOf(regions[1].Name())
	if h0 != h1 || h0 == "" {
		t.Fatalf("daughters hosted on %q and %q", h0, h1)
	}
}

func TestSplitRegionErrors(t *testing.T) {
	m, c := newCluster(t, 1)
	tbl, _ := m.CreateTable("t", nil)
	if err := m.SplitRegion("ghost"); err == nil {
		t.Fatal("unknown region split accepted")
	}
	// Too little data.
	c.Put("t", "only", []byte("v"))
	if err := m.SplitRegion(tbl.RegionNames()[0]); err == nil {
		t.Fatal("split of single-row region accepted")
	}
	// Region still serves after the refused split.
	if _, err := c.Get("t", "only"); err != nil {
		t.Fatal(err)
	}
}

func TestAutoSplitThreshold(t *testing.T) {
	m, c := newCluster(t, 1)
	tbl, _ := m.CreateTable("t", nil)
	for i := 0; i < 300; i++ {
		c.Put("t", fmt.Sprintf("k%04d", i), make([]byte, 1024))
	}
	// Nothing splits below the threshold.
	if split := m.AutoSplit(1 << 30); len(split) != 0 {
		t.Fatalf("split %v below threshold", split)
	}
	// A tiny threshold splits the region.
	split := m.AutoSplit(64 << 10)
	if len(split) != 1 {
		t.Fatalf("split = %v, want 1 region", split)
	}
	if tbl.NumRegions() != 2 {
		t.Fatalf("regions = %d", tbl.NumRegions())
	}
	// Defaults: <=0 uses the 250 MB default (nothing here is that big).
	if split := m.AutoSplit(0); len(split) != 0 {
		t.Fatalf("default threshold split %v", split)
	}
}

func TestSplitRepeatedlyMaintainsOrder(t *testing.T) {
	m, c := newCluster(t, 2)
	tbl, _ := m.CreateTable("t", nil)
	for i := 0; i < 400; i++ {
		c.Put("t", fmt.Sprintf("k%04d", i), make([]byte, 256))
	}
	for round := 0; round < 3; round++ {
		m.AutoSplit(8 << 10)
	}
	if tbl.NumRegions() < 4 {
		t.Fatalf("regions = %d after repeated splits", tbl.NumRegions())
	}
	// Regions tile the key space in order.
	regions := tbl.Regions()
	for i := 1; i < len(regions); i++ {
		if regions[i-1].EndKey() != regions[i].StartKey() {
			t.Fatalf("gap between region %d and %d", i-1, i)
		}
	}
	if regions[0].StartKey() != "" || regions[len(regions)-1].EndKey() != "" {
		t.Fatal("outer bounds not open")
	}
	// All data still present.
	got, err := c.Scan("t", "", "", -1)
	if err != nil || len(got) != 400 {
		t.Fatalf("scan = %d, %v", len(got), err)
	}
}

func TestStochasticBalancerBalancesLoad(t *testing.T) {
	loads := map[string]metrics.RequestCounts{}
	var regions []string
	for i := 0; i < 12; i++ {
		r := fmt.Sprintf("r%02d", i)
		regions = append(regions, r)
		load := int64(10)
		if i < 3 {
			load = 300 // three hot regions
		}
		loads[r] = metrics.RequestCounts{Reads: load}
	}
	b := &StochasticBalancer{
		RNG:    sim.NewRNG(5),
		LoadOf: func(r string) metrics.RequestCounts { return loads[r] },
	}
	plan := b.Assign(regions, []string{"s0", "s1", "s2"})
	if len(plan) != 12 {
		t.Fatalf("plan covers %d regions", len(plan))
	}
	// The three hot regions end up on three distinct servers.
	hotHosts := map[string]bool{}
	for i := 0; i < 3; i++ {
		hotHosts[plan[fmt.Sprintf("r%02d", i)]] = true
	}
	if len(hotHosts) != 3 {
		t.Fatalf("hot regions on %d servers, want 3 (plan %v)", len(hotHosts), plan)
	}
}

func TestStochasticBalancerBeatsRandomOnSkew(t *testing.T) {
	loads := map[string]metrics.RequestCounts{}
	var regions []string
	rng := sim.NewRNG(7)
	for i := 0; i < 20; i++ {
		r := fmt.Sprintf("r%02d", i)
		regions = append(regions, r)
		loads[r] = metrics.RequestCounts{Reads: int64(rng.Intn(100)) + 1}
	}
	servers := []string{"s0", "s1", "s2", "s3"}
	loadOf := func(r string) metrics.RequestCounts { return loads[r] }

	imbalance := func(plan map[string]string) float64 {
		per := map[string]float64{}
		var total float64
		for r, s := range plan {
			per[s] += float64(loads[r].Total())
			total += float64(loads[r].Total())
		}
		mean := total / float64(len(servers))
		worst := 0.0
		for _, s := range servers {
			if per[s] > worst {
				worst = per[s]
			}
		}
		return worst / mean
	}
	stoch := &StochasticBalancer{RNG: sim.NewRNG(1), LoadOf: loadOf}
	random := &RandomBalancer{RNG: sim.NewRNG(1)}
	si := imbalance(stoch.Assign(regions, servers))
	ri := imbalance(random.Assign(regions, servers))
	if si >= ri {
		t.Fatalf("stochastic imbalance %.3f not below random %.3f", si, ri)
	}
	if si > 1.25 {
		t.Fatalf("stochastic imbalance %.3f too high", si)
	}
}

func TestStochasticBalancerLocalityTerm(t *testing.T) {
	regions := []string{"r0", "r1"}
	servers := []string{"s0", "s1"}
	// r0's data lives on s1, r1's on s0: the locality term should pin
	// each region to its data.
	b := &StochasticBalancer{
		RNG: sim.NewRNG(2),
		LocalityOf: func(r, n string) float64 {
			if (r == "r0" && n == "s1") || (r == "r1" && n == "s0") {
				return 1
			}
			return 0
		},
		LocalityWeight: 10,
	}
	plan := b.Assign(regions, servers)
	if plan["r0"] != "s1" || plan["r1"] != "s0" {
		t.Fatalf("plan ignored locality: %v", plan)
	}
}

func TestStochasticBalancerDeterministicWithoutRNG(t *testing.T) {
	regions := []string{"a", "b", "c", "d"}
	servers := []string{"s0", "s1"}
	b := &StochasticBalancer{}
	p1 := b.Assign(regions, servers)
	p2 := b.Assign(regions, servers)
	for r := range p1 {
		if p1[r] != p2[r] {
			t.Fatal("deterministic mode diverged")
		}
	}
	// Degenerate inputs.
	if len(b.Assign(nil, servers)) != 0 || len(b.Assign(regions, nil)) != 0 {
		t.Fatal("degenerate inputs mishandled")
	}
}

func TestStochasticBalancerAsMasterBalancer(t *testing.T) {
	nn := hdfs.NewNamenode(2)
	m := NewMaster(nn)
	for i := 0; i < 3; i++ {
		if _, err := m.AddServer(fmt.Sprintf("rs%d", i), DefaultServerConfig()); err != nil {
			t.Fatal(err)
		}
	}
	m.SetBalancer(&StochasticBalancer{RNG: sim.NewRNG(3)})
	tbl, err := m.CreateTable("t", []string{"b", "c", "d", "e", "f"})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRegions() != 6 {
		t.Fatalf("regions = %d", tbl.NumRegions())
	}
	// Every region assigned to a live server.
	for _, r := range tbl.RegionNames() {
		if host, ok := m.HostOf(r); !ok || host == "" {
			t.Fatalf("region %s unassigned", r)
		}
	}
}
