package hbase

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"met/internal/hdfs"
	"met/internal/sim"
)

func TestCompactionConfigValidate(t *testing.T) {
	good := DefaultServerConfig()
	good.Compaction = CompactionConfig{MaxStoreFiles: 4, StallStoreFiles: 12, Policy: "leveled", Workers: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultServerConfig()
	bad.Compaction.Policy = "mystery"
	if bad.Validate() == nil {
		t.Fatal("unknown policy accepted")
	}
	bad = DefaultServerConfig()
	bad.Compaction = CompactionConfig{MaxStoreFiles: 8, StallStoreFiles: 8}
	if bad.Validate() == nil {
		t.Fatal("stall ceiling <= soft threshold accepted")
	}
}

// compactionConfig is durableConfig plus an aggressive background
// compactor, so test-sized workloads exercise the whole subsystem.
func compactionConfig(dataDir, policy string) ServerConfig {
	cfg := durableConfig(dataDir)
	cfg.HeapBytes = 256 << 10 // ~68 KB flush threshold: plenty of SSTables
	cfg.Compaction = CompactionConfig{MaxStoreFiles: 3, StallStoreFiles: 10, Policy: policy}
	return cfg
}

// TestBackgroundCompactionBoundsFileCount: a durable server under
// sustained writes must keep store-file counts bounded by the pool
// alone — flushes never compact inline anymore — for both policies.
func TestBackgroundCompactionBoundsFileCount(t *testing.T) {
	for _, policy := range []string{"tiered", "leveled"} {
		t.Run(policy, func(t *testing.T) {
			nn := hdfs.NewNamenode(2)
			m := NewMaster(nn)
			rs, err := m.AddServer("rs0", compactionConfig(t.TempDir(), policy))
			if err != nil {
				t.Fatal(err)
			}
			if rs.Compactor() == nil {
				t.Fatal("no background pool")
			}
			if _, err := m.CreateTable("t", nil); err != nil {
				t.Fatal(err)
			}
			c := NewClient(m)
			val := make([]byte, 1024)
			for i := 0; i < 800; i++ {
				if err := c.Put("t", fmt.Sprintf("k%05d", i%200), val); err != nil {
					t.Fatal(err)
				}
			}
			eng := rs.EngineStats()
			if eng.Flushes < 4 {
				t.Fatalf("flushes = %d; volume too small to test compaction", eng.Flushes)
			}
			// Wait for the pool to drain the backlog.
			deadline := time.Now().Add(10 * time.Second)
			tbl, _ := m.Table("t")
			store := tbl.Regions()[0].Store()
			for time.Now().Before(deadline) {
				if store.NumFiles() <= 3 && store.Stats().CompactionQueueDepth == 0 {
					break
				}
				time.Sleep(time.Millisecond)
			}
			if got := store.NumFiles(); got > 3 {
				t.Fatalf("background compaction never bounded the stack: %d files", got)
			}
			if ps := rs.CompactionStats(); ps.Compactions == 0 {
				t.Fatalf("pool idle: %+v", ps)
			}
			// Data integrity across background merges.
			for i := 0; i < 200; i++ {
				if _, err := c.Get("t", fmt.Sprintf("k%05d", i)); err != nil {
					t.Fatalf("key lost under background compaction: %v", err)
				}
			}
			// The HDFS mirror reconciled: engine files == namenode files.
			region := tbl.Regions()[0]
			if engineFiles, hdfsFiles := region.Store().NumFiles(), len(region.Files()); engineFiles != hdfsFiles {
				t.Fatalf("mirror out of sync: engine %d files, namenode %d", engineFiles, hdfsFiles)
			}
		})
	}
}

// TestMajorCompactRoutesThroughPool: the actuator path must run on the
// pool (its stats move), still block until done, and leave one local
// file per region.
func TestMajorCompactRoutesThroughPool(t *testing.T) {
	nn := hdfs.NewNamenode(2)
	m := NewMaster(nn)
	rs, err := m.AddServer("rs0", compactionConfig(t.TempDir(), "tiered"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	c := NewClient(m)
	val := make([]byte, 2048)
	for i := 0; i < 120; i++ {
		if err := c.Put("t", fmt.Sprintf("k%04d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	tbl, _ := m.Table("t")
	region := tbl.Regions()[0]
	region.Store().Flush()
	before := rs.CompactionStats().Compactions
	if _, err := rs.MajorCompact(region.Name()); err != nil {
		t.Fatal(err)
	}
	if got := region.Store().NumFiles(); got != 1 {
		t.Fatalf("files after MajorCompact = %d, want 1", got)
	}
	if after := rs.CompactionStats().Compactions; after <= before {
		t.Fatal("MajorCompact bypassed the pool")
	}
	if got := len(region.Files()); got != 1 {
		t.Fatalf("namenode files = %d, want the one compacted file", got)
	}
	// The pool disabled (Workers < 0) falls back to the direct path.
	cfg := compactionConfig(t.TempDir(), "tiered")
	cfg.Compaction.Workers = -1
	rs2, err := NewRegionServer("rs-noPool", cfg, nn)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.Compactor() != nil {
		t.Fatal("negative workers must disable the pool")
	}
}

// TestRestartSwapsCompactorOnKnobChange: changed compaction knobs take
// effect through the restart path (new pool), unchanged knobs keep the
// pool.
func TestRestartSwapsCompactorOnKnobChange(t *testing.T) {
	dir := t.TempDir()
	nn := hdfs.NewNamenode(2)
	m := NewMaster(nn)
	cfg := compactionConfig(dir, "tiered")
	rs, err := m.AddServer("rs0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := rs.Compactor()
	if err := rs.Restart(cfg); err != nil {
		t.Fatal(err)
	}
	if rs.Compactor() != same {
		t.Fatal("unchanged knobs must keep the pool")
	}
	cfg.Compaction.Policy = "leveled"
	if err := rs.Restart(cfg); err != nil {
		t.Fatal(err)
	}
	if rs.Compactor() == same {
		t.Fatal("changed knobs must rebuild the pool")
	}
	if rs.Compactor().Policy().Name() != "leveled" {
		t.Fatal("new policy not applied")
	}
}

// TestBackgroundCompactionChaos hammers a durable cluster with
// concurrent writers, readers and scanners while background compactions
// run continuously and a chaos goroutine flushes, splits, restarts,
// moves and finally closes regions — the -race proof that ripping
// compaction out of the write lock kept PR 1's guarantees.
func TestBackgroundCompactionChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos stress skipped in -short")
	}
	dir := t.TempDir()
	nn := hdfs.NewNamenode(2)
	m := NewMaster(nn)
	cfg := compactionConfig(dir, "leveled")
	cfg.Compaction.BudgetBytesPerSec = 64 << 20 // real token-bucket arbitration
	for i := 0; i < 2; i++ {
		if _, err := m.AddServer(fmt.Sprintf("rs%d", i), cfg); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.CreateTable("t", []string{"k400"}); err != nil {
		t.Fatal(err)
	}
	c := NewClient(m)
	val := make([]byte, 512)
	key := func(i int) string { return fmt.Sprintf("k%05d", i%800) }
	for i := 0; i < 800; i++ {
		if err := c.Put("t", key(i), val); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 6
	var wg sync.WaitGroup
	var hardErr atomic.Value
	stop := make(chan struct{})
	record := func(err error) {
		if err != nil && !benign(err) {
			hardErr.CompareAndSwap(nil, fmt.Sprintf("%v", err))
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := sim.NewRNG(uint64(w) + 99)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := key(rng.Intn(800))
				switch i % 3 {
				case 0:
					record(c.Put("t", k, val))
				case 1:
					_, err := c.Get("t", k)
					record(err)
				case 2:
					_, err := c.Scan("t", k, "", 10)
					record(err)
				}
			}
		}(w)
	}

	// Chaos alongside: flush + major compact + restart + move, racing
	// the pool's automatic minors and the serving goroutines.
	chaosDeadline := time.Now().Add(3 * time.Second)
	rng := sim.NewRNG(7)
	for round := 0; time.Now().Before(chaosDeadline) && hardErr.Load() == nil; round++ {
		servers := m.Servers()
		rs := servers[rng.Intn(len(servers))]
		switch round % 4 {
		case 0:
			for _, r := range rs.Regions() {
				r.Store().Flush()
			}
		case 1:
			for _, r := range rs.Regions() {
				if _, err := rs.MajorCompact(r.Name()); err != nil && !benign(err) {
					// A region moved mid-loop is benign churn.
					if _, hosted := m.HostOf(r.Name()); hosted {
						record(err)
					}
				}
			}
		case 2:
			record(rs.Restart(cfg))
		case 3:
			if regions := rs.Regions(); len(regions) > 0 {
				dst := servers[rng.Intn(len(servers))]
				_ = m.MoveRegion(regions[0].Name(), dst.Name())
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if msg := hardErr.Load(); msg != nil {
		t.Fatal(msg)
	}

	// Split under load-less conditions, then close everything while the
	// pools may still hold queued work — nothing may wedge or race.
	tbl, _ := m.Table("t")
	if len(tbl.Regions()) > 0 {
		_ = m.SplitRegion(tbl.Regions()[0].Name())
	}
	for i := 0; i < 800; i++ {
		if _, err := c.Get("t", key(i)); err != nil {
			t.Fatalf("key %s lost after chaos: %v", key(i), err)
		}
	}
	for _, rs := range m.Servers() {
		for _, r := range rs.Regions() {
			r.Store().Close()
		}
		rs.Shutdown()
	}
}
