package hbase

import (
	"fmt"
	"path/filepath"
	"testing"
)

// walSegmentFiles counts the segment files in one server's shared-log
// directory — the reopen-then-stat-the-wal-dir probe for the cold-start
// pinning bug.
func walSegmentFiles(t *testing.T, dataDir, server string) int {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(ServerWALDir(dataDir, server), "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	return len(paths)
}

// TestColdStartReclaimsMovedAwayRegionsWALRecords: a region that moved
// to another server leaves its (already flushed) records in the old
// host's shared log. After a cold start the region never re-registers
// there, so its flush clock is stuck at zero and — before the open-time
// reclaim — those records pinned the old host's segments forever, no
// matter how often the regions still living there flushed.
func TestColdStartReclaimsMovedAwayRegionsWALRecords(t *testing.T) {
	dir := t.TempDir()
	m, c := newCatalogCluster(t, 2, dir, durableConfig(dir))
	if _, err := m.CreateTable("t", []string{"m"}); err != nil {
		t.Fatal(err)
	}
	tbl, _ := m.Table("t")
	var moved, staying *Region
	for _, r := range tbl.Regions() {
		if r.StartKey() == "" {
			moved = r
		} else {
			staying = r
		}
	}
	src, _ := m.HostOf(moved.Name())
	// Co-locate both regions on src so its log interleaves records from
	// both; then the move leaves the mixed segment behind.
	if host, _ := m.HostOf(staying.Name()); host != src {
		if err := m.MoveRegion(staying.Name(), src); err != nil {
			t.Fatal(err)
		}
	}
	// Small volume: nothing flushes, so both regions' records share
	// src's active segment.
	for i := 0; i < 40; i++ {
		if err := c.Put("t", fmt.Sprintf("a%04d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := c.Put("t", fmt.Sprintf("z%04d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	dst := "rs0"
	if src == "rs0" {
		dst = "rs1"
	}
	// The move flushes the region and truncates its records in src's
	// log — but the segment survives, still holding staying's live
	// records alongside moved's now-dead ones.
	if err := m.MoveRegion(moved.Name(), dst); err != nil {
		t.Fatal(err)
	}
	m.HardStop()

	m2, err := OpenCluster(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m2.HardStop)
	rs, err := m2.Server(src)
	if err != nil {
		t.Fatalf("server %s not revived: %v", src, err)
	}
	// The open-time reclaim must have voided the moved-away region's
	// records: nothing of it may remain shippable from src's log.
	if tail := rs.SharedWAL().SyncedTail(moved.Name()); len(tail) != 0 {
		t.Fatalf("moved-away region still in %s's shippable tail: %d records", src, len(tail))
	}
	// Flush the region still hosted on src. With the orphan dropped this
	// covers everything in the old segments, so the sweep leaves exactly
	// the fresh active segment; with the orphan pinning them the old
	// segment survives every flush cycle.
	tbl2, _ := m2.Table("t")
	for _, r := range tbl2.Regions() {
		if r.Name() == staying.Name() {
			if err := r.Store().Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n := walSegmentFiles(t, dir, src); n != 1 {
		t.Fatalf("%s's wal dir holds %d segment files after reopen+flush, want 1 (orphan records pinning old segments)", src, n)
	}
	// The reclaim must not have touched live data: every row reads back.
	for i := 0; i < 40; i++ {
		for _, k := range []string{fmt.Sprintf("a%04d", i), fmt.Sprintf("z%04d", i)} {
			if v, err := c2Get(m2, "t", k); err != nil || string(v) != "v" {
				t.Fatalf("%s after cold start: %q, %v", k, v, err)
			}
		}
	}
}

// c2Get reads through a fresh client so routing reflects the reopened
// cluster.
func c2Get(m *Master, table, key string) ([]byte, error) {
	return NewClient(m).Get(table, key)
}
