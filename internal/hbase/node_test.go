package hbase

import (
	"fmt"
	"testing"
)

// TestNodeSurfaceFailover drives the multi-process split — LayoutMaster
// plus OpenServerNode workers — inside one process: bootstrap a durable
// cluster, stop it, reopen as layout master + worker nodes, kill a
// worker, and fail its regions over through PlanRecovery / AdoptRegion
// / CommitRecovery.
func TestNodeSurfaceFailover(t *testing.T) {
	dir := t.TempDir()
	// Bootstrap with the full in-process Master, then stop: the catalog
	// now holds the committed layout the node surface starts from.
	m, c := newCatalogCluster(t, 3, dir, durableConfig(dir))
	if _, err := m.CreateTable("t", []string{"g", "p"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 90; i++ {
		if err := c.Put("t", fmt.Sprintf("k%04d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	flushAll(t, m)
	m.QuiesceReplication()
	m.HardStop()

	lm, err := OpenLayoutMaster(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer lm.Close()
	nodes := make(map[string]*RegionServer)
	for _, sn := range lm.ServerNames() {
		man, err := lm.Manifest(sn)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := OpenServerNode(man)
		if err != nil {
			t.Fatal(err)
		}
		nodes[sn] = rs
		t.Cleanup(rs.Shutdown)
	}
	epoch0, _ := lm.Layout()
	route := func(key string) LayoutRegion {
		_, layout := lm.Layout()
		for _, r := range layout {
			if key >= r.Start && (r.End == "" || key < r.End) {
				return r
			}
		}
		t.Fatalf("no region for %q", key)
		return LayoutRegion{}
	}
	// Every bootstrap write must be readable through the worker nodes.
	for i := 0; i < 90; i++ {
		k := fmt.Sprintf("k%04d", i)
		if v, err := nodes[route(k).Server].Get("t", k); err != nil || string(v) != "v" {
			t.Fatalf("get %s via node: %q, %v", k, v, err)
		}
	}
	// And new writes land (and replicate) through them too.
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("n%04d", i)
		if err := nodes[route(k).Server].Put("t", k, []byte("w")); err != nil {
			t.Fatal(err)
		}
	}
	for _, rs := range nodes {
		rs.QuiesceReplication()
	}

	// Kill one worker and fail it over onto the survivors.
	victim := route("k0000").Server
	nodes[victim].Shutdown()
	quarantineServerDirs(t, nodes[victim])
	specs, err := lm.PlanRecovery(victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatalf("victim %s hosted no regions; bad test setup", victim)
	}
	for _, sp := range specs {
		if sp.Source == victim {
			t.Fatalf("plan adopted onto the dead server: %+v", sp)
		}
		if sp.ReplicaDir == "" {
			t.Fatalf("no surviving replica elected for %s", sp.Region)
		}
		rep, err := nodes[sp.Source].AdoptRegion(sp)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ReplicaFiles == 0 {
			t.Fatalf("adoption of %s copied no replica files", sp.Region)
		}
	}
	updates, err := lm.CommitRecovery(victim, specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, up := range updates {
		if up.Server == victim {
			continue
		}
		if err := nodes[up.Server].Refollow(up); err != nil {
			t.Fatal(err)
		}
	}
	if epoch1, _ := lm.Layout(); epoch1 <= epoch0 {
		t.Fatalf("routing epoch did not advance across recovery: %d -> %d", epoch0, epoch1)
	}
	delete(nodes, victim)

	// Every acknowledged write — bootstrap and post-reopen — survives,
	// served by the adopting workers under the new layout.
	check := func(key, want string) {
		r := route(key)
		if r.Server == victim {
			t.Fatalf("layout still routes %s to the dead server", key)
		}
		if v, err := nodes[r.Server].Get("t", key); err != nil || string(v) != want {
			t.Fatalf("get %s after failover: %q, %v", key, v, err)
		}
	}
	for i := 0; i < 90; i++ {
		check(fmt.Sprintf("k%04d", i), "v")
	}
	for i := 0; i < 30; i++ {
		check(fmt.Sprintf("n%04d", i), "w")
	}

	// The committed result must also cold-start: the catalog rows the
	// recovery wrote are a complete, consistent layout.
	for _, rs := range nodes {
		rs.Shutdown()
	}
	lm.Close()
	m2, err := OpenCluster(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m2.HardStop)
	for i := 0; i < 90; i++ {
		if v, err := c2Get(m2, "t", fmt.Sprintf("k%04d", i)); err != nil || string(v) != "v" {
			t.Fatalf("cold start after node recovery: k%04d: %q, %v", i, v, err)
		}
	}
}
