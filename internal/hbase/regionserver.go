package hbase

import (
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"met/internal/compaction"
	"met/internal/durable"
	"met/internal/hdfs"
	"met/internal/kv"
	"met/internal/metrics"
	"met/internal/obs"
	"met/internal/replication"
)

// Common region server errors.
var (
	// ErrWrongRegionServer is returned when a key's region is not
	// hosted here (the client then refreshes its routing).
	ErrWrongRegionServer = errors.New("hbase: region not hosted on this server")
	// ErrServerStopped is returned while a server is down (e.g. during
	// a reconfiguration restart).
	ErrServerStopped = errors.New("hbase: region server stopped")
)

// RegionServer hosts a set of regions, applies one ServerConfig to all of
// them, and is co-located with an HDFS datanode of the same name.
//
// Concurrency model: mu is a reader/writer lock over the server's
// topology (the hosted-region map and its per-table sorted routing
// index, cfg, cache, running, restarts). The serving hot path —
// Get/Put/Delete/Scan — takes only the read lock, for just long enough
// to route the key through the sorted index; the data operation itself
// runs against the region's store, which has its own reader/writer
// lock. Region open/close, restarts and rebalances take the write lock.
// Request counters are atomics (metrics.AtomicCounts), so monitoring
// never perturbs serving. Lock ordering is RegionServer.mu before
// Region.mu before kv locks; no callee ever takes a RegionServer lock,
// so the order cannot invert.
type RegionServer struct {
	mu sync.RWMutex

	name     string
	cfg      ServerConfig
	namenode *hdfs.Namenode
	regions  map[string]*Region
	// index routes lookups: per table, the hosted regions sorted by
	// start key for binary search. Rebuilt on every open/close.
	index    map[string][]*Region
	cache    *kv.BlockCache // shared across the server's regions
	requests metrics.AtomicCounts
	running  bool
	restarts int

	// compactor is the server-wide background compaction pool shared by
	// every hosted region's store (HBase's per-server compaction
	// threads). Nil when ServerConfig.Compaction.Workers < 0, which
	// reverts stores to inline compaction at flush time.
	compactor *compaction.Pool

	// replicator ships every hosted region's SSTables to its followers'
	// replica directories (met/internal/replication), charging the
	// compactor pool's I/O budget as background bytes. Nil on the
	// in-memory backend (no DataDir: nothing shippable).
	replicator *replication.Replicator

	// wal is the server's shared group-commit log (HBase's
	// one-WAL-per-RegionServer design): every hosted region appends
	// through a region-scoped handle, so N regions share one fsync
	// stream. With a replicator the log retains its synced-but-unflushed
	// tail (durable.Options.KeepTail) and announces commit rounds
	// (OnSynced), which is what lets tail-streaming ship a hot memstore's
	// acknowledged writes to followers. Nil on the in-memory backend.
	wal *durable.WAL

	// tel is the server's observability state: always-on lock-free
	// latency histograms per op class, and the slow-op trace machinery
	// armed by ServerConfig.SlowOpThreshold (see telemetry.go).
	tel serverTelemetry
}

// NewRegionServer creates a running server and registers its co-located
// datanode with the namenode.
func NewRegionServer(name string, cfg ServerConfig, nn *hdfs.Namenode) (*RegionServer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nn.AddDatanode(name)
	s := &RegionServer{
		name:     name,
		cfg:      cfg,
		namenode: nn,
		regions:  make(map[string]*Region),
		index:    make(map[string][]*Region),
		cache:    kv.NewBlockCache(int(cfg.BlockCacheBytes())),
		running:  true,
	}
	s.tel.slowLog = obs.NewSlowLog(cfg.SlowOpLogSize)
	s.tel.setConfig(cfg)
	s.compactor = newCompactorPool(cfg.Compaction, s)
	s.replicator = newReplicator(cfg, s.compactor)
	if cfg.DataDir != "" {
		w, err := durable.OpenWAL(serverWALDir(cfg.DataDir, name), s.walOptionsLocked())
		if err != nil {
			if s.compactor != nil {
				s.compactor.Close()
			}
			if s.replicator != nil {
				s.replicator.Close()
			}
			nn.RemoveDatanode(name)
			return nil, fmt.Errorf("hbase: open server wal for %s: %w", name, err)
		}
		s.wal = w
	}
	return s, nil
}

// serverWALDir is the shared log's directory: keyed by server — unlike
// region directories — because the log IS the server's (one fsync
// stream for all its regions). RecoverServer reclaims it when the
// server dies; a cold start reopens it and replays the unflushed tail.
func serverWALDir(dataDir, server string) string {
	return filepath.Join(dataDir, "wal", url.PathEscape(server))
}

// ServerWALDir exposes the shared-log directory mapping for tooling:
// the metbench failover gate renames a killed server's WAL directory
// aside along with its region directories, proving the recovered tail
// comes from the shipped replica copies, not the dead server's disk.
func ServerWALDir(dataDir, server string) string {
	return serverWALDir(dataDir, server)
}

// walOptionsLocked derives the shared log's options from the server's
// current pool and replicator. Called while constructing s or holding
// mu. The OnSynced hook runs off the log's locks after each successful
// fsync round; it nudges the replicator so freshly durable tail records
// ship promptly instead of waiting for the next flush, and credits the
// per-region record counts that drive the bounded-lag tail floor (ship
// at least every K records / T ms even when the reconcile queue is
// starved mid-burst).
func (s *RegionServer) walOptionsLocked() durable.Options {
	opts := durable.Options{KeepTail: s.replicator != nil}
	if s.compactor != nil {
		opts.Account = s.compactor.Budget().NoteForeground
	}
	opts.OnSynced = func(regions map[string]int) {
		s.mu.RLock()
		rep := s.replicator
		s.mu.RUnlock()
		if rep == nil {
			return
		}
		for rn, n := range regions {
			rep.Notify(rn)
			rep.NoteTailRecords(rn, n)
		}
	}
	return opts
}

// newReplicator builds the server's SSTable shipper; nil without a data
// directory (the in-memory backend exports no files). The compactor
// pool's token-bucket budget rate-limits shipping as background I/O;
// with the pool disabled shipping is unthrottled.
func newReplicator(cfg ServerConfig, pool *compaction.Pool) *replication.Replicator {
	if cfg.DataDir == "" {
		return nil
	}
	rc := replication.Config{
		TailFloorRecords:  cfg.TailShipMaxLagRecords,
		TailFloorInterval: cfg.TailShipMaxLagInterval,
	}
	if pool != nil {
		rc.Budget = pool.Budget()
	}
	return replication.New(rc)
}

// replicaDir is the directory follower keeps its copy of a region's
// SSTables in, under the shared cluster data root — the single-process
// stand-in for the follower's local disk.
func replicaDir(dataDir, follower, regionName string) string {
	return filepath.Join(dataDir, "replica", url.PathEscape(follower), url.PathEscape(regionName))
}

// newCompactorPool builds the server-wide pool from the configured
// knobs; nil (disabled) when Workers < 0. Completed background
// compactions reconcile the owning region's HDFS mirror, so the
// namenode's view tracks the engine's even when no Put is flowing.
func newCompactorPool(cc CompactionConfig, s *RegionServer) *compaction.Pool {
	if cc.Workers < 0 {
		return nil
	}
	return compaction.NewPool(compaction.Config{
		Workers:           cc.Workers,
		BudgetBytesPerSec: cc.BudgetBytesPerSec,
		Policy:            compaction.NewPolicy(cc.Policy),
		MaxStoreFiles:     cc.MaxStoreFiles,
		OnCompacted: func(store *kv.Store, _ kv.CompactionResult) {
			// Fan out: the HDFS locality mirror reconciles and the
			// replicator retires the compacted-away SSTables from the
			// followers (the store-level files-changed hook coalesces
			// with this; both paths reconcile idempotently).
			if r := s.regionOfStore(store); r != nil {
				s.mirrorSync(r)
				s.notifyReplication(r.Name())
			}
		},
	})
}

// regionOfStore finds the hosted region currently backed by store, or
// nil (the store was retired by a restart, split or move).
func (s *RegionServer) regionOfStore(store *kv.Store) *Region {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, r := range s.regions {
		if r.Store() == store {
			return r
		}
	}
	return nil
}

// Name returns the server's identity (also its datanode name).
func (s *RegionServer) Name() string { return s.name }

// Config returns the active configuration.
func (s *RegionServer) Config() ServerConfig {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cfg
}

// Running reports whether the server is serving requests.
func (s *RegionServer) Running() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.running
}

// Restarts counts configuration restarts, an actuation-cost metric.
func (s *RegionServer) Restarts() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.restarts
}

// regionDataDir maps a region name to its on-disk directory under the
// cluster data root. The directory is keyed by region name only — not by
// server — so a region keeps its files when it moves between servers
// (the single-process deployment shares the data root, as HDFS would).
// Region names may contain arbitrary key bytes; path-escaping keeps the
// mapping injective and filesystem-safe.
func regionDataDir(dataDir, regionName string) string {
	return filepath.Join(dataDir, "regions", url.PathEscape(regionName))
}

// RegionDataDir exposes the primary-directory mapping for tooling: the
// metbench failover gate renames a killed server's region directories
// aside before RecoverServer, proving recovery reads replica copies
// only.
func RegionDataDir(dataDir, regionName string) string {
	return regionDataDir(dataDir, regionName)
}

// discardRegionStore closes r's store and reclaims its durable
// directory: the shared teardown for regions abandoned mid-operation —
// a failed CreateTable's unwind, a failed split's half-created
// daughters, and a committed split's superseded parent.
func discardRegionStore(rs *RegionServer, r *Region) {
	st := r.Store()
	h, _ := st.WAL().(*durable.RegionLog)
	st.Close()
	if h != nil {
		// A durable drop marker voids the region's records in its shared
		// log: without it, a log segment the abandoned region pinned
		// would replay those records into any future region re-minted
		// under the same name.
		_ = h.Owner().Drop(h.Name())
	}
	if dd := rs.Config().DataDir; dd != "" {
		_ = os.RemoveAll(regionDataDir(dd, r.Name()))
	}
}

// storeConfigFor derives the kv engine config for one region hosted
// here. The server's memstore budget is split across its regions (HBase
// bounds the global memstore similarly); the block cache is shared. When
// the server has a data directory, the config carries the durable
// backend factory for the region's own directory; otherwise the store
// is in-memory with a simulation WAL.
func (s *RegionServer) storeConfigFor(regionName string, numRegions int) kv.Config {
	if numRegions < 1 {
		numRegions = 1
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	cfg := kv.Config{
		MemstoreFlushBytes: int(s.cfg.MemstoreBytes()) / numRegions,
		BlockBytes:         s.cfg.BlockBytes,
		Cache:              s.cache,
		Seed:               uint64(len(s.name)) + uint64(numRegions),
		MaxStoreFiles:      s.cfg.Compaction.MaxStoreFiles,
	}
	if s.replicator != nil {
		// The flush hook: a new SSTable enqueues the region for
		// replication. Keyed by name, so the hook survives store swaps
		// (restarts reopen with a fresh config carrying the same hook).
		name := regionName
		cfg.OnFilesChanged = func() { s.notifyReplication(name) }
	}
	var opts durable.Options
	if s.compactor != nil {
		// Background compaction: the store asks the shared pool for
		// service instead of compacting inline under its write lock,
		// stalls writers at the hard ceiling, and shares one I/O budget
		// with the pool — into which the durable WAL accounts its
		// foreground bytes.
		cfg.Compactor = s.compactor
		cfg.HardMaxStoreFiles = s.cfg.Compaction.StallStoreFiles
		cfg.CompactionBudget = s.compactor.Budget()
		opts.Account = s.compactor.Budget().NoteForeground
	}
	if s.cfg.DataDir != "" {
		if s.wal != nil {
			// One log per server: the store appends through a
			// region-scoped handle on the shared WAL instead of opening a
			// private log in its region directory.
			cfg.WAL = s.wal.Region(regionName)
			opts.ExternalWAL = true
		}
		cfg.OpenBackend = durable.Opener(regionDataDir(s.cfg.DataDir, regionName), opts)
	}
	return cfg
}

// rebuildIndexLocked recomputes the per-table sorted routing index from
// the hosted-region map. Callers must hold the write lock. Open/close is
// rare next to lookups, so paying O(n log n) here to make every lookup
// O(log n) under a shared lock is the right trade.
func (s *RegionServer) rebuildIndexLocked() {
	idx := make(map[string][]*Region, len(s.index))
	for _, r := range s.regions {
		idx[r.Table()] = append(idx[r.Table()], r)
	}
	for _, regions := range idx {
		sort.Slice(regions, func(i, j int) bool { return regions[i].StartKey() < regions[j].StartKey() })
	}
	s.index = idx
}

// OpenRegion starts hosting a region. The region's store keeps its data;
// only bookkeeping changes hands — plus the compaction plumbing: the
// store arrives wired to its previous host's compactor pool and I/O
// budget, and without rewiring it would keep charging (and being
// serviced by) a server it no longer lives on until its next reopen.
func (s *RegionServer) OpenRegion(r *Region) {
	// The store (and its engine file IDs) travels with the region, so
	// existing mirror bookkeeping stays valid.
	r.resetMirror(r.Store(), true)
	s.adoptWAL(r)
	s.rewireStore(r.Store())
	s.trackReplication(r)
	s.mu.Lock()
	s.regions[r.Name()] = r
	s.rebuildIndexLocked()
	s.mu.Unlock()
	// Catch up the followers on whatever the store already holds (a
	// moved region's files, a cold-started region's recovered stack).
	s.notifyReplication(r.Name())
}

// adoptWAL re-homes a moved region's logging onto this server's shared
// WAL. A store arriving from another server (MoveRegion, a
// decommission drain) is still wired to that server's log; left alone
// it would keep appending into — and its flushes truncating — a log
// whose lifetime it no longer shares. SwitchWAL flushes the memstore
// first, so every record the old log held for this store is durable in
// an SSTable (and truncated away there) before appends land here.
func (s *RegionServer) adoptWAL(r *Region) {
	s.mu.RLock()
	w := s.wal
	s.mu.RUnlock()
	if w == nil {
		return
	}
	st := r.Store()
	h, ok := st.WAL().(*durable.RegionLog)
	if !ok || h.Owner() == w {
		// Already ours, or an in-memory store with its private
		// simulation log — only stores on a shared log move between them.
		return
	}
	_ = st.SwitchWAL(w.Region(r.Name()))
}

// trackReplication registers a region with this server's replicator.
// The closures read the region's current store and follower set on
// every reconciliation, so restarts (store swaps) and follower re-picks
// need no re-registration.
func (s *RegionServer) trackReplication(r *Region) {
	s.mu.RLock()
	rep := s.replicator
	dataDir := s.cfg.DataDir
	w := s.wal
	s.mu.RUnlock()
	if rep == nil {
		// Re-homed onto a server without replication: drop the previous
		// host's hook so flushes stop poking its replicator.
		r.Store().SetFilesChanged(nil)
		return
	}
	var tail func() []kv.Entry
	if w != nil {
		// Tail streaming: each reconciliation ships the region's
		// durable-but-unflushed records alongside its SSTables, so a
		// failover loses at most the unsynced in-flight window.
		name := r.Name()
		tail = func() []kv.Entry { return w.SyncedTail(name) }
	}
	rep.Track(r.Name(),
		func() ([]kv.ExportedFile, bool) { return r.Store().ExportFiles() },
		func() []string {
			followers := r.Followers()
			dests := make([]string, 0, len(followers))
			for _, f := range followers {
				dests = append(dests, replicaDir(dataDir, f, r.Name()))
			}
			return dests
		},
		tail)
	r.Store().SetFilesChanged(func() { s.notifyReplication(r.Name()) })
}

// notifyReplication enqueues a hosted region for replica
// reconciliation; a no-op without a replicator.
func (s *RegionServer) notifyReplication(region string) {
	s.mu.RLock()
	rep := s.replicator
	s.mu.RUnlock()
	if rep != nil {
		rep.Notify(region)
	}
}

// ReclaimOrphanWALRecords drops every shared-log region whose name no
// hosted region claims, reclaiming the segments those records pin. A
// cold start needs this: a region that moved away before the last
// shutdown left records in this server's log, but after the restart it
// never re-registers here — its flush clock never advances, so without
// a drop marker its records would pin their segments (and stay in the
// shippable tail) until the *region's own* next flush on some other
// server, which can be never. OpenCluster calls this once per server
// after every catalog-assigned region has been reopened.
//
// Known residual: a crash between MoveRegion's WAL switch and the next
// flush leaves the moved region's post-switch records only in the new
// host's log; that window is unrelated to this reclaim (the records are
// in a *live* server's log and replay normally).
func (s *RegionServer) ReclaimOrphanWALRecords() ([]string, error) {
	s.mu.RLock()
	w := s.wal
	live := make(map[string]bool, len(s.regions))
	for name := range s.regions {
		live[name] = true
	}
	s.mu.RUnlock()
	if w == nil {
		return nil, nil
	}
	return w.DropAbsent(live)
}

// QuiesceReplication blocks until the replicator has shipped every
// pending notification — the barrier between "acknowledged" and "safe
// to lose the primary". With a shared WAL every hosted region is
// re-notified first: OnSynced fires only on commit rounds, so a tail
// whose last record was synced before the previous reconciliation (or
// carried across a segment rotation) has no later round to announce it,
// and the explicit nudge is what makes the barrier cover it.
func (s *RegionServer) QuiesceReplication() {
	s.mu.RLock()
	rep := s.replicator
	w := s.wal
	regions := make([]string, 0, len(s.regions))
	for name := range s.regions {
		regions = append(regions, name)
	}
	s.mu.RUnlock()
	if rep == nil {
		return
	}
	if w != nil {
		for _, name := range regions {
			rep.Notify(name)
		}
	}
	rep.Quiesce()
}

// WALStats is a snapshot of the server's shared write-ahead log: how
// many records were appended, how many fsync rounds committed them
// (group commit keeps rounds sub-linear in appends across any number
// of regions), the physical log bytes, and the live segment count.
type WALStats struct {
	Appends    int64
	SyncRounds int64
	Bytes      int64
	Segments   int
}

// WALStats snapshots the shared log (zero value without one).
func (s *RegionServer) WALStats() WALStats {
	s.mu.RLock()
	w := s.wal
	s.mu.RUnlock()
	if w == nil {
		return WALStats{}
	}
	return WALStats{
		Appends:    w.Appends(),
		SyncRounds: w.SyncRounds(),
		Bytes:      w.BytesAppended(),
		Segments:   w.SegmentCount(),
	}
}

// SharedWAL exposes the server's shared log (tests; nil without one).
func (s *RegionServer) SharedWAL() *durable.WAL {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.wal
}

// ReplicationStats snapshots the server's SSTable shipper (zero value
// without one).
func (s *RegionServer) ReplicationStats() replication.Stats {
	s.mu.RLock()
	rep := s.replicator
	s.mu.RUnlock()
	if rep == nil {
		return replication.Stats{}
	}
	return rep.Stats()
}

// rewireStore re-homes a store's background-compaction attribution onto
// this server: compaction requests route to this server's pool, flush
// and compaction bytes charge this server's I/O budget, writers stall
// against this server's hard file ceiling, and the durable WAL's
// foreground accounting feeds the same budget. With no pool here the
// store reverts to inline compaction (and its WAL stops accounting).
func (s *RegionServer) rewireStore(st *kv.Store) {
	s.mu.RLock()
	pool := s.compactor
	stall := s.cfg.Compaction.StallStoreFiles
	s.mu.RUnlock()
	var account func(int)
	if pool != nil {
		st.SetCompaction(pool, pool.Budget(), stall)
		account = pool.Budget().NoteForeground
	} else {
		st.SetCompaction(nil, nil, -1)
	}
	if w, ok := st.WAL().(interface{ SetAccount(func(int)) }); ok {
		w.SetAccount(account)
	}
}

// CloseRegion stops hosting a region and returns it (nil when absent).
func (s *RegionServer) CloseRegion(name string) *Region {
	s.mu.Lock()
	r := s.regions[name]
	rep := s.replicator
	if r != nil {
		delete(s.regions, name)
		s.rebuildIndexLocked()
	}
	s.mu.Unlock()
	if r != nil && rep != nil {
		// The region is no longer ours to ship; its next host re-tracks
		// it (OpenRegion) against its own replicator.
		rep.Untrack(name)
	}
	return r
}

// Regions returns the hosted regions sorted by name.
func (s *RegionServer) Regions() []*Region {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Region, 0, len(s.regions))
	for _, r := range s.regions {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// NumRegions returns the hosted region count.
func (s *RegionServer) NumRegions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.regions)
}

// lookup locates the hosted region containing key for table via binary
// search over the table's sorted start keys, under the shared lock.
func (s *RegionServer) lookup(table, key string) (*Region, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.running {
		return nil, ErrServerStopped
	}
	regions := s.index[table]
	// The last region whose start key is <= key is the only candidate.
	i := sort.Search(len(regions), func(i int) bool { return regions[i].StartKey() > key })
	if i == 0 {
		return nil, ErrWrongRegionServer
	}
	if r := regions[i-1]; r.Contains(key) {
		return r, nil
	}
	return nil, ErrWrongRegionServer
}

// Get reads the newest value of key. The op is timed into the server-
// and region-level get histograms; with a slow-op threshold configured
// it is also traced stage by stage (route, memstore, bloom, block
// cache, SSTable reads) and captured in the slow log when over
// threshold.
func (s *RegionServer) Get(table, key string) ([]byte, error) {
	start := time.Now()
	tr := s.beginOp("get", table, key)
	r, err := s.lookup(table, key)
	tr.EndSpan("route", start)
	if err != nil {
		return nil, err
	}
	r.countRead()
	s.requests.AddRead()
	v, err := r.Store().GetTraced(key, tr)
	d := time.Since(start)
	recordOp(&s.tel.lat, &r.lat, opGet, d)
	s.finishOp(tr, d)
	return v, err
}

// Put writes a value and mirrors any resulting engine flush into HDFS.
func (s *RegionServer) Put(table, key string, value []byte) error {
	start := time.Now()
	tr := s.beginOp("put", table, key)
	r, err := s.lookup(table, key)
	tr.EndSpan("route", start)
	if err != nil {
		return err
	}
	r.countWrite()
	s.requests.AddWrite()
	if err := r.Store().PutTraced(key, value, tr); err != nil {
		return err
	}
	s.mirrorSync(r)
	d := time.Since(start)
	recordOp(&s.tel.lat, &r.lat, opPut, d)
	s.finishOp(tr, d)
	return nil
}

// Delete removes a key. Deletes are writes: they time into the put
// histograms, matching the request counters.
func (s *RegionServer) Delete(table, key string) error {
	start := time.Now()
	tr := s.beginOp("delete", table, key)
	r, err := s.lookup(table, key)
	tr.EndSpan("route", start)
	if err != nil {
		return err
	}
	r.countWrite()
	s.requests.AddWrite()
	if err := r.Store().DeleteTraced(key, tr); err != nil {
		return err
	}
	s.mirrorSync(r)
	d := time.Since(start)
	recordOp(&s.tel.lat, &r.lat, opPut, d)
	s.finishOp(tr, d)
	return nil
}

// Scan reads up to limit entries in [start, end) within one region. The
// client stitches multi-region scans together.
func (s *RegionServer) Scan(table, start, end string, limit int) ([]kv.Entry, error) {
	opStart := time.Now()
	tr := s.beginOp("scan", table, start)
	r, err := s.lookup(table, start)
	tr.EndSpan("route", opStart)
	if err != nil {
		return nil, err
	}
	r.countScan()
	s.requests.AddScan()
	scanEnd := end
	if r.EndKey() != "" && (scanEnd == "" || r.EndKey() < scanEnd) {
		scanEnd = r.EndKey()
	}
	out, err := r.Store().ScanTraced(start, scanEnd, limit, tr)
	d := time.Since(opStart)
	recordOp(&s.tel.lat, &r.lat, opScan, d)
	s.finishOp(tr, d)
	return out, err
}

// mirrorSync reconciles the region's HDFS mirror with its engine file
// stack: files the engine flushed since the last sync are written to the
// namenode as local files (sized from the real store files — for a
// durable backend, the actual on-disk SSTable sizes), files the engine
// compacted away are deleted. The diff is computed atomically in the
// region (mirrorActions), so concurrent writers to different regions
// never contend on a server-wide lock and no file is mirrored twice.
func (s *RegionServer) mirrorSync(r *Region) {
	adds, removes, ok := r.mirrorActions(r.Store(), false)
	if !ok {
		return
	}
	for _, a := range adds {
		_ = s.namenode.WriteFile(a.name, a.bytes, s.name)
	}
	for _, f := range removes {
		_ = s.namenode.DeleteFile(f)
	}
}

// MajorCompact rewrites all of a region's files as one file local to this
// server, restoring locality — exactly what MeT's Actuator invokes when
// the locality index falls below its threshold. It returns the number of
// bytes rewritten (the paper charges ~1 minute per GB for this).
//
// The request routes through the server's background compaction queue at
// high priority: the caller still blocks until the rewrite completes
// (the actuator's contract), but the merge I/O runs on a pool worker
// under the shared I/O budget, off the store write lock, so serving
// continues throughout. With the pool disabled it falls back to calling
// the engine directly (same locking profile — CompactFiles either way).
func (s *RegionServer) MajorCompact(regionName string) (int64, error) {
	s.mu.RLock()
	r, ok := s.regions[regionName]
	pool := s.compactor
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("hbase: major compact: region %q not hosted on %s", regionName, s.name)
	}
	store := r.Store()
	var inBytes int64
	for _, fi := range store.FileInfos() {
		inBytes += fi.Bytes
	}
	var err error
	if pool != nil {
		if err = pool.CompactWait(store); errors.Is(err, compaction.ErrPoolClosed) {
			err = store.Compact(true)
		}
	} else {
		err = store.Compact(true)
	}
	if err != nil {
		return 0, fmt.Errorf("hbase: major compact %s: %w", regionName, err)
	}
	// Reconcile the mirror against the post-compaction stack in one
	// atomic diff: the compacted output is written locally (restoring
	// locality), retired inputs — including a flush that raced the
	// compaction and was folded into it — are deleted, and any legacy
	// files from pre-restart stores are purged. Sizes always come from
	// the engine's real file stack, so nothing is double-counted.
	adds, removes, ok := r.mirrorActions(store, true)
	if ok {
		for _, a := range adds {
			if err := s.namenode.WriteFile(a.name, a.bytes, s.name); err != nil {
				return 0, err
			}
		}
		for _, f := range removes {
			_ = s.namenode.DeleteFile(f)
		}
	}
	return inBytes, nil
}

// Locality returns this server's locality index: the fraction of hosted
// region bytes whose HDFS blocks live on the co-located datanode.
func (s *RegionServer) Locality() float64 {
	var files []string
	for _, r := range s.Regions() {
		files = append(files, r.Files()...)
	}
	return s.namenode.Locality(s.name, files)
}

// Requests returns the server-level cumulative counters.
func (s *RegionServer) Requests() metrics.RequestCounts {
	return s.requests.Snapshot()
}

// EngineStats aggregates the kv engine counters (flushes, compactions,
// write amplification, stall time, queue depth, ...) across every
// hosted region's store.
func (s *RegionServer) EngineStats() kv.Stats {
	var total kv.Stats
	for _, r := range s.Regions() {
		total = total.Add(r.Store().Stats())
	}
	return total
}

// CompactionStats snapshots the server's background compactor (zero
// value when the pool is disabled).
func (s *RegionServer) CompactionStats() compaction.PoolStats {
	s.mu.RLock()
	pool := s.compactor
	s.mu.RUnlock()
	if pool == nil {
		return compaction.PoolStats{}
	}
	return pool.Stats()
}

// Compactor exposes the background pool (tests; nil when disabled).
func (s *RegionServer) Compactor() *compaction.Pool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.compactor
}

// Shutdown stops the server permanently: serving stops, the background
// compactor drains, and the replicator stops shipping (a dead server
// pushes nothing — its followers already hold whatever was shipped).
// Decommissioning and HardStop call this; a plain Stop (reconfiguration
// restart) keeps both alive.
func (s *RegionServer) Shutdown() {
	s.mu.Lock()
	s.running = false
	pool := s.compactor
	s.compactor = nil
	rep := s.replicator
	s.replicator = nil
	w := s.wal
	s.wal = nil
	s.mu.Unlock()
	if pool != nil {
		pool.Close()
	}
	if rep != nil {
		rep.Close()
	}
	if w != nil {
		// Release the file handle so a cold start (or a recovery sweep)
		// owns the directory. The final fsync cannot un-lose anything: a
		// record is acknowledged only after a commit round has actually
		// fsynced it — Close holds the group-commit leader slot while it
		// fences and fsyncs, so no round can credit records past a
		// skipped or failed final fsync.
		_ = w.Close() //lint:allow syncerr shutdown handle release; acknowledged records were covered by a real fsync (commit round serialized against Close via the committer leader slot)
	}
}

// Stop takes the server offline (requests fail until Start).
func (s *RegionServer) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running = false
}

// Start brings the server back online.
func (s *RegionServer) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running = true
}

// Restart applies a new configuration. As in real HBase there is no
// online reconfiguration: the server stops, every hosted region's store
// is reopened with the new engine parameters (cold cache), and the server
// comes back up. The caller (the Actuator) is responsible for draining
// regions first if it wants to keep them available during the restart.
func (s *RegionServer) Restart(cfg ServerConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	s.running = false
	oldCompaction := s.cfg.Compaction
	oldDataDir := s.cfg.DataDir
	oldPool := s.compactor
	oldRep := s.replicator
	s.cfg = cfg
	s.cache = kv.NewBlockCache(int(cfg.BlockCacheBytes()))
	s.tel.setConfig(cfg)
	if cfg.Compaction != oldCompaction {
		// New compaction knobs take effect like any other restart-only
		// HBase setting: the old pool drains and a fresh one (new
		// budget, policy, workers) serves the reopened stores.
		s.compactor = newCompactorPool(cfg.Compaction, s)
	}
	rewireReplication := cfg.Compaction != oldCompaction || cfg.DataDir != oldDataDir
	if rewireReplication {
		// The replicator budgets through the compactor pool, so a pool
		// swap (or a backend change) rebuilds it too.
		s.replicator = newReplicator(cfg, s.compactor)
	}
	var oldWAL *durable.WAL
	var walErr error
	if cfg.DataDir != oldDataDir {
		// A backend change relocates the shared log; the old one stays
		// open until every store has reopened off it (their final
		// flushes truncate through the old handles).
		oldWAL = s.wal
		s.wal = nil
		if cfg.DataDir != "" {
			//lint:allow locksafe offline reconfiguration: serving is stopped (running=false) and the exclusive lock over the swap is the point
			w, err := durable.OpenWAL(serverWALDir(cfg.DataDir, s.name), s.walOptionsLocked())
			if err != nil {
				walErr = fmt.Errorf("hbase: restart %s: reopen server wal: %w", s.name, err)
			} else {
				s.wal = w
			}
		}
	} else if s.wal != nil && cfg.Compaction != oldCompaction {
		// Same log, new pool: the WAL's foreground bytes charge the
		// fresh budget from the next append on.
		var account func(int)
		if s.compactor != nil {
			account = s.compactor.Budget().NoteForeground
		}
		s.wal.SetAccount(account)
	}
	regions := make([]*Region, 0, len(s.regions))
	for _, r := range s.regions {
		regions = append(regions, r)
	}
	n := len(regions)
	s.mu.Unlock()
	if cfg.Compaction != oldCompaction && oldPool != nil {
		oldPool.Close()
	}
	if rewireReplication && oldRep != nil {
		oldRep.Close()
	}

	sort.Slice(regions, func(i, j int) bool { return regions[i].Name() < regions[j].Name() })
	var errs []error
	if walErr != nil {
		errs = append(errs, walErr)
	}
	for _, r := range regions {
		// A region moved away while we were down is the new host's to
		// reopen, not ours.
		s.mu.RLock()
		_, hosted := s.regions[r.Name()]
		s.mu.RUnlock()
		if !hosted {
			continue
		}
		if err := r.reopen(s.storeConfigFor(r.Name(), n)); err != nil {
			// A split or close that raced us retired the store; if the
			// region is truly gone that is not our failure. Either way
			// the server must come back up — a wedged-stopped server
			// would fail every request forever.
			s.mu.RLock()
			_, hosted = s.regions[r.Name()]
			s.mu.RUnlock()
			if hosted {
				errs = append(errs, err)
			}
			continue
		}
		// Re-track against the (possibly fresh) replicator: the reopened
		// store needs its files-changed hook and the shipper must know
		// the region, or post-restart flushes would never replicate.
		s.trackReplication(r)
		s.notifyReplication(r.Name())
	}
	if oldWAL != nil {
		_ = oldWAL.Close() //lint:allow syncerr handle release: every reopened store already flushed and truncated past the relocated log
	}
	s.mu.Lock()
	s.restarts++
	s.running = true
	s.mu.Unlock()
	return errors.Join(errs...)
}
