package hbase

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"met/internal/hdfs"
	"met/internal/kv"
	"met/internal/metrics"
)

// Common region server errors.
var (
	// ErrWrongRegionServer is returned when a key's region is not
	// hosted here (the client then refreshes its routing).
	ErrWrongRegionServer = errors.New("hbase: region not hosted on this server")
	// ErrServerStopped is returned while a server is down (e.g. during
	// a reconfiguration restart).
	ErrServerStopped = errors.New("hbase: region server stopped")
)

// RegionServer hosts a set of regions, applies one ServerConfig to all of
// them, and is co-located with an HDFS datanode of the same name.
type RegionServer struct {
	mu sync.Mutex

	name     string
	cfg      ServerConfig
	namenode *hdfs.Namenode
	regions  map[string]*Region
	cache    *kv.BlockCache // shared across the server's regions
	requests metrics.RequestCounts
	running  bool
	restarts int

	// flush bookkeeping for mirroring engine flushes into HDFS
	lastFlushes map[string]int64
	lastBytes   map[string]int64
}

// NewRegionServer creates a running server and registers its co-located
// datanode with the namenode.
func NewRegionServer(name string, cfg ServerConfig, nn *hdfs.Namenode) (*RegionServer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nn.AddDatanode(name)
	return &RegionServer{
		name:        name,
		cfg:         cfg,
		namenode:    nn,
		regions:     make(map[string]*Region),
		cache:       kv.NewBlockCache(int(cfg.BlockCacheBytes())),
		running:     true,
		lastFlushes: make(map[string]int64),
		lastBytes:   make(map[string]int64),
	}, nil
}

// Name returns the server's identity (also its datanode name).
func (s *RegionServer) Name() string { return s.name }

// Config returns the active configuration.
func (s *RegionServer) Config() ServerConfig {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg
}

// Running reports whether the server is serving requests.
func (s *RegionServer) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// Restarts counts configuration restarts, an actuation-cost metric.
func (s *RegionServer) Restarts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restarts
}

// storeConfig derives the kv engine config for one region hosted here.
// The server's memstore budget is split across its regions (HBase bounds
// the global memstore similarly); the block cache is shared.
func (s *RegionServer) storeConfig(numRegions int) kv.Config {
	if numRegions < 1 {
		numRegions = 1
	}
	return kv.Config{
		MemstoreFlushBytes: int(s.cfg.MemstoreBytes()) / numRegions,
		BlockBytes:         s.cfg.BlockBytes,
		Cache:              s.cache,
		Seed:               uint64(len(s.name)) + uint64(numRegions),
	}
}

// OpenRegion starts hosting a region. The region's store keeps its data;
// only bookkeeping changes hands.
func (s *RegionServer) OpenRegion(r *Region) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.regions[r.Name()] = r
	st := r.Store().Stats()
	s.lastFlushes[r.Name()] = st.Flushes
	s.lastBytes[r.Name()] = st.FlushedBytes
}

// CloseRegion stops hosting a region and returns it (nil when absent).
func (s *RegionServer) CloseRegion(name string) *Region {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.regions[name]
	delete(s.regions, name)
	delete(s.lastFlushes, name)
	delete(s.lastBytes, name)
	return r
}

// Regions returns the hosted regions sorted by name.
func (s *RegionServer) Regions() []*Region {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Region, 0, len(s.regions))
	for _, r := range s.regions {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// NumRegions returns the hosted region count.
func (s *RegionServer) NumRegions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.regions)
}

// lookup locates the hosted region containing key for table.
func (s *RegionServer) lookup(table, key string) (*Region, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.running {
		return nil, ErrServerStopped
	}
	for _, r := range s.regions {
		if r.Table() == table && r.Contains(key) {
			return r, nil
		}
	}
	return nil, ErrWrongRegionServer
}

// Get reads the newest value of key.
func (s *RegionServer) Get(table, key string) ([]byte, error) {
	r, err := s.lookup(table, key)
	if err != nil {
		return nil, err
	}
	r.countRead()
	s.mu.Lock()
	s.requests.Reads++
	s.mu.Unlock()
	return r.Store().Get(key)
}

// Put writes a value and mirrors any resulting engine flush into HDFS.
func (s *RegionServer) Put(table, key string, value []byte) error {
	r, err := s.lookup(table, key)
	if err != nil {
		return err
	}
	r.countWrite()
	s.mu.Lock()
	s.requests.Writes++
	s.mu.Unlock()
	if err := r.Store().Put(key, value); err != nil {
		return err
	}
	s.mirrorFlushes(r)
	return nil
}

// Delete removes a key.
func (s *RegionServer) Delete(table, key string) error {
	r, err := s.lookup(table, key)
	if err != nil {
		return err
	}
	r.countWrite()
	s.mu.Lock()
	s.requests.Writes++
	s.mu.Unlock()
	if err := r.Store().Delete(key); err != nil {
		return err
	}
	s.mirrorFlushes(r)
	return nil
}

// Scan reads up to limit entries in [start, end) within one region. The
// client stitches multi-region scans together.
func (s *RegionServer) Scan(table, start, end string, limit int) ([]kv.Entry, error) {
	r, err := s.lookup(table, start)
	if err != nil {
		return nil, err
	}
	r.countScan()
	s.mu.Lock()
	s.requests.Scans++
	s.mu.Unlock()
	scanEnd := end
	if r.EndKey() != "" && (scanEnd == "" || r.EndKey() < scanEnd) {
		scanEnd = r.EndKey()
	}
	return r.Store().Scan(start, scanEnd, limit)
}

// mirrorFlushes records newly flushed engine bytes as HDFS files written
// locally to this server, so the namenode's locality index tracks where
// each region's data physically lives. Engine-internal minor compactions
// are not mirrored file-by-file; locality fidelity is at flush/compact
// granularity, which is what the paper's index measures.
func (s *RegionServer) mirrorFlushes(r *Region) {
	st := r.Store().Stats()
	s.mu.Lock()
	prevFlushes := s.lastFlushes[r.Name()]
	prevBytes := s.lastBytes[r.Name()]
	if st.Flushes > prevFlushes {
		s.lastFlushes[r.Name()] = st.Flushes
		s.lastBytes[r.Name()] = st.FlushedBytes
	}
	name := s.name
	s.mu.Unlock()
	if st.Flushes > prevFlushes {
		file := r.nextFileName()
		size := st.FlushedBytes - prevBytes
		if size <= 0 {
			size = 1
		}
		if err := s.namenode.WriteFile(file, size, name); err == nil {
			r.addFile(file)
		}
	}
}

// MajorCompact rewrites all of a region's files as one file local to this
// server, restoring locality — exactly what MeT's Actuator invokes when
// the locality index falls below its threshold. It returns the number of
// bytes rewritten (the paper charges ~1 minute per GB for this).
func (s *RegionServer) MajorCompact(regionName string) (int64, error) {
	s.mu.Lock()
	r, ok := s.regions[regionName]
	name := s.name
	s.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("hbase: major compact: region %q not hosted on %s", regionName, name)
	}
	r.Store().Compact(true)
	for _, f := range r.Files() {
		_ = s.namenode.DeleteFile(f)
	}
	size := r.DataBytes()
	if size <= 0 {
		r.setFiles(nil)
		return 0, nil
	}
	file := r.nextFileName()
	if err := s.namenode.WriteFile(file, size, name); err != nil {
		return 0, err
	}
	r.setFiles([]string{file})
	return size, nil
}

// Locality returns this server's locality index: the fraction of hosted
// region bytes whose HDFS blocks live on the co-located datanode.
func (s *RegionServer) Locality() float64 {
	var files []string
	for _, r := range s.Regions() {
		files = append(files, r.Files()...)
	}
	return s.namenode.Locality(s.name, files)
}

// Requests returns the server-level cumulative counters.
func (s *RegionServer) Requests() metrics.RequestCounts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

// Stop takes the server offline (requests fail until Start).
func (s *RegionServer) Stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running = false
}

// Start brings the server back online.
func (s *RegionServer) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running = true
}

// Restart applies a new configuration. As in real HBase there is no
// online reconfiguration: the server stops, every hosted region's store
// is reopened with the new engine parameters (cold cache), and the server
// comes back up. The caller (the Actuator) is responsible for draining
// regions first if it wants to keep them available during the restart.
func (s *RegionServer) Restart(cfg ServerConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	s.running = false
	s.cfg = cfg
	s.cache = kv.NewBlockCache(int(cfg.BlockCacheBytes()))
	regions := make([]*Region, 0, len(s.regions))
	for _, r := range s.regions {
		regions = append(regions, r)
	}
	n := len(regions)
	s.mu.Unlock()

	sort.Slice(regions, func(i, j int) bool { return regions[i].Name() < regions[j].Name() })
	for _, r := range regions {
		if err := r.reopen(s.storeConfig(n)); err != nil {
			return err
		}
		st := r.Store().Stats()
		s.mu.Lock()
		s.lastFlushes[r.Name()] = st.Flushes
		s.lastBytes[r.Name()] = st.FlushedBytes
		s.mu.Unlock()
	}
	s.mu.Lock()
	s.restarts++
	s.running = true
	s.mu.Unlock()
	return nil
}
