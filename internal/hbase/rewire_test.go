package hbase

import (
	"fmt"
	"testing"
	"time"

	"met/internal/hdfs"
)

// TestMovedRegionCompactsOnDestinationPool pins the moved-region
// rewiring: before this fix a moved region's store kept its ORIGINAL
// server's compactor pool, I/O budget and WAL accounting hook until its
// next reopen, so compaction work and budget accounting were attributed
// to a server the region no longer lived on. After a move, flush-driven
// compaction requests must be serviced by the destination's pool, and
// the WAL/flush foreground bytes must charge the destination's budget —
// with the source's counters untouched.
func TestMovedRegionCompactsOnDestinationPool(t *testing.T) {
	dir := t.TempDir()
	cfg := compactionConfig(dir, "tiered")
	nn := hdfs.NewNamenode(2)
	m := NewMaster(nn)
	src, err := m.AddServer("rs0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Create the table while rs0 is the only server, pinning the region
	// there; add the destination afterwards.
	if _, err := m.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	dst, err := m.AddServer("rs1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(m)
	// A little pre-move data, below the flush threshold so no
	// compaction work is queued on the source yet.
	for i := 0; i < 20; i++ {
		if err := c.Put("t", fmt.Sprintf("p%04d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	tbl, _ := m.Table("t")
	region := tbl.Regions()[0]
	if err := m.MoveRegion(region.Name(), "rs1"); err != nil {
		t.Fatal(err)
	}
	srcPool := src.CompactionStats()
	srcFG := srcPool.Budget.ForegroundBytes

	// Drive enough writes through the moved region to flush well past
	// MaxStoreFiles: the destination pool must bound the file count.
	val := make([]byte, 1024)
	for i := 0; i < 800; i++ {
		if err := c.Put("t", fmt.Sprintf("k%05d", i%200), val); err != nil {
			t.Fatal(err)
		}
	}
	store := region.Store()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if store.NumFiles() <= 3 && store.Stats().CompactionQueueDepth == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := store.NumFiles(); got > 3 {
		t.Fatalf("moved region's file count never bounded: %d files — nobody serviced it", got)
	}
	dstPool := dst.CompactionStats()
	if dstPool.Compactions == 0 {
		t.Fatalf("destination pool never compacted the moved region: %+v", dstPool)
	}
	if after := src.CompactionStats().Compactions; after != srcPool.Compactions {
		t.Fatalf("source pool serviced the moved region: %d -> %d compactions",
			srcPool.Compactions, after)
	}
	// Budget attribution followed the region: the destination absorbed
	// the WAL and flush foreground bytes, the source absorbed none.
	if dstPool.Budget.ForegroundBytes == 0 {
		t.Fatal("destination budget saw no foreground bytes — WAL accounting not rewired")
	}
	if after := src.CompactionStats().Budget.ForegroundBytes; after != srcFG {
		t.Fatalf("source budget still charged for the moved region: %d -> %d bytes", srcFG, after)
	}
	// And the data is intact.
	for i := 0; i < 200; i++ {
		if _, err := c.Get("t", fmt.Sprintf("k%05d", i)); err != nil {
			t.Fatalf("k%05d after move+compaction: %v", i, err)
		}
	}
}
