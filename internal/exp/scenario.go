package exp

import (
	"fmt"
	"math"
	"sort"

	"met/internal/core"
	"met/internal/hbase"
	"met/internal/perfmodel"
	"met/internal/placement"
	"met/internal/sim"
	"met/internal/ycsb"
)

// Strategy names the placement-and-configuration strategies of
// Section 3.3.
type Strategy int

// The three strategies of the motivation experiment.
const (
	RandomHomogeneous Strategy = iota
	ManualHomogeneous
	ManualHeterogeneous
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case RandomHomogeneous:
		return "Random-Homogeneous"
	case ManualHomogeneous:
		return "Manual-Homogeneous"
	case ManualHeterogeneous:
		return "Manual-Heterogeneous"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// regionMeta carries scenario-level knowledge about one region.
type regionMeta struct {
	name     string
	workload ycsb.Workload
	index    int
	share    float64 // fraction of the workload's requests
	accType  placement.AccessType
}

// Scenario is a fully built multi-tenant YCSB deployment description.
type Scenario struct {
	Model   *perfmodel.Model
	Regions []regionMeta
	// ThreadScale multiplies every workload's thread count (the
	// elasticity experiment overloads the cluster this way).
	ThreadScale float64
}

// regionName builds the canonical region identifier.
func ycsbRegionName(w ycsb.Workload, idx int) string {
	return fmt.Sprintf("%s,p%d", w.TableName(), idx)
}

// accessTypeOf classifies a workload the way Section 3.3 does by
// inspection (the controller re-derives this from observed counters; the
// scenario needs it for the Manual-Heterogeneous oracle placement).
func accessTypeOf(w ycsb.Workload) placement.AccessType {
	switch {
	case w.ScanProportion > 0.6:
		return placement.Scan
	case w.ReadProportion > 0.6:
		return placement.Read
	case w.UpdateProportion+w.InsertProportion > 0.6:
		return placement.Write
	default:
		// Mixes — including read-modify-write, which is as much a
		// write as a read — group as Read/Write, matching Section 3.3.
		return placement.ReadWrite
	}
}

// mixOf converts a YCSB workload's proportions to the model's OpMix.
func mixOf(w ycsb.Workload) perfmodel.OpMix {
	return perfmodel.OpMix{
		Read:  w.ReadProportion,
		Write: w.UpdateProportion + w.InsertProportion,
		Scan:  w.ScanProportion,
		RMW:   w.RMWProportion,
	}
}

// BuildYCSBScenario constructs the Section 3 environment: the six paper
// workloads, their 21 regions with the hotspot-derived per-partition
// shares and within-partition popularity, and `servers` nodes. Placement
// and configuration are applied separately via ApplyStrategy.
func BuildYCSBScenario(servers int, threadScale float64) *Scenario {
	sc := &Scenario{Model: perfmodel.NewModel(), ThreadScale: threadScale}
	recordBytes := 1100.0 // 1 KB value + key/qualifier overhead

	for _, w := range ycsb.PaperWorkloads() {
		shares := w.PartitionShares()
		wl := &perfmodel.WorkloadPerf{
			Name:            w.Name,
			Threads:         int(math.Max(1, float64(w.Threads)*threadScale)),
			TargetOpsPerSec: w.TargetOpsPerSec,
			Mix:             mixOf(w),
			RecordBytes:     recordBytes,
			AvgScanRecords:  float64(w.MaxScanLength+1) / 2,
			RegionShares:    make(map[string]float64),
			Active:          true,
		}
		if w.InsertProportion > 0 {
			wl.GrowthBytesPerOp = w.InsertProportion * recordBytes
		}
		n := float64(w.RecordCount)
		hot := n * 0.4
		per := n / float64(w.Partitions)
		for p := 0; p < w.Partitions; p++ {
			rname := ycsbRegionName(w, p)
			lo, hi := per*float64(p), per*float64(p+1)
			hotOverlap := math.Max(0, math.Min(hi, hot)-lo)
			hotDataFrac := hotOverlap / per
			// Traffic to the hot overlap inside this partition.
			hotTraffic := 0.0
			if hot > 0 {
				hotTraffic = 0.5 * hotOverlap / hot
			}
			coldOverlap := per - hotOverlap
			coldTraffic := 0.0
			if n-hot > 0 {
				coldTraffic = 0.5 * coldOverlap / (n - hot)
			}
			share := hotTraffic + coldTraffic
			hotTrafficFrac := 0.0
			if share > 0 {
				hotTrafficFrac = hotTraffic / share
			}
			sc.Model.Regions[rname] = &perfmodel.RegionPerf{
				Name:           rname,
				SizeBytes:      per * recordBytes,
				HotDataFrac:    hotDataFrac,
				HotTrafficFrac: hotTrafficFrac,
				Locality:       1,
			}
			wl.RegionShares[rname] = shares[p]
			sc.Regions = append(sc.Regions, regionMeta{
				name: rname, workload: w, index: p, share: shares[p], accType: accessTypeOf(w),
			})
		}
		sc.Model.Workloads = append(sc.Model.Workloads, wl)
	}
	for i := 0; i < servers; i++ {
		name := fmt.Sprintf("rs%d", i)
		sc.Model.Nodes[name] = &perfmodel.NodePerf{Name: name, Config: hbase.DefaultServerConfig()}
	}
	return sc
}

// NodeNames returns the scenario's node names, sorted.
func (sc *Scenario) NodeNames() []string {
	out := make([]string, 0, len(sc.Model.Nodes))
	for n := range sc.Model.Nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// partitionsByLoad converts the scenario regions to placement partitions
// whose load is the expected request share (thread-weighted).
func (sc *Scenario) partitionsByLoad() []placement.Partition {
	var parts []placement.Partition
	for _, rm := range sc.Regions {
		// Weight by the workload's thread count so cross-tenant loads
		// compare (requests-per-interval is what MeT itself uses).
		load := rm.share * float64(rm.workload.Threads)
		reads := int64(load * 1000 * (rm.workload.ReadFraction()))
		writes := int64(load * 1000 * rm.workload.WriteFraction())
		scans := int64(load * 1000 * rm.workload.ScanFraction())
		parts = append(parts, placement.Partition{
			Name:     rm.name,
			Requests: metricsCounts(reads, writes, scans),
		})
	}
	return parts
}

// ApplyStrategy sets node configurations and region placement per the
// named strategy. rng drives Random-Homogeneous placement (pass a
// different seed per run to reproduce the paper's variance).
func (sc *Scenario) ApplyStrategy(s Strategy, rng *sim.RNG) {
	nodes := sc.NodeNames()
	switch s {
	case RandomHomogeneous:
		for _, n := range nodes {
			sc.Model.Nodes[n].Config = hbase.DefaultServerConfig()
		}
		// HBase's random balancer: even counts, random identity.
		var regions []string
		for _, rm := range sc.Regions {
			regions = append(regions, rm.name)
		}
		sort.Strings(regions)
		rng.Shuffle(len(regions), func(i, j int) { regions[i], regions[j] = regions[j], regions[i] })
		for i, r := range regions {
			sc.Model.Placement[r] = nodes[i%len(nodes)]
		}
	case ManualHomogeneous:
		for _, n := range nodes {
			sc.Model.Nodes[n].Config = hbase.DefaultServerConfig()
		}
		// The paper's method: hot partitions dispersed, and "data
		// partitions were distributed so that the number of read/write
		// requests would be evenly balanced across all nodes", then an
		// exhaustive search — "We evaluated 15 possible distributions
		// and we chose the one that showed better throughput." Each
		// candidate therefore spreads the write-heavy partitions
		// round-robin (every node carries a similar write load — the
		// opposite of isolation) and shuffles the rest for balanced
		// counts; the measured throughput is the model's solved total.
		var writeRegions, otherRegions []string
		for _, rm := range sc.Regions {
			if rm.accType == placement.Write {
				writeRegions = append(writeRegions, rm.name)
			} else {
				otherRegions = append(otherRegions, rm.name)
			}
		}
		sort.Strings(writeRegions)
		sort.Strings(otherRegions)
		best := make(map[string]string)
		bestTotal := -1.0
		for trial := 0; trial < 15; trial++ {
			wcand := append([]string(nil), writeRegions...)
			ocand := append([]string(nil), otherRegions...)
			rng.Shuffle(len(wcand), func(i, j int) { wcand[i], wcand[j] = wcand[j], wcand[i] })
			rng.Shuffle(len(ocand), func(i, j int) { ocand[i], ocand[j] = ocand[j], ocand[i] })
			for i, r := range wcand {
				sc.Model.Placement[r] = nodes[i%len(nodes)]
			}
			for i, r := range ocand {
				// Continue the round robin where the writes left off so
				// counts stay balanced.
				sc.Model.Placement[r] = nodes[(i+len(wcand))%len(nodes)]
			}
			if total := sc.Model.Solve().Total(); total > bestTotal {
				bestTotal = total
				for r, n := range sc.Model.Placement {
					best[r] = n
				}
			}
		}
		for r, n := range best {
			sc.Model.Placement[r] = n
		}
	case ManualHeterogeneous:
		sc.applyHeterogeneous(nodes)
	}
}

// applyHeterogeneous reproduces Section 3.3's oracle: group workloads by
// access pattern, attribute nodes proportionally (the read/write group
// got two of the five), configure each node per Table 1, and balance
// within groups.
func (sc *Scenario) applyHeterogeneous(nodes []string) {
	profiles := core.Table1Profiles()
	groups := make(map[placement.AccessType][]placement.Partition)
	metaByName := make(map[string]regionMeta)
	for _, rm := range sc.Regions {
		metaByName[rm.name] = rm
	}
	for _, p := range sc.partitionsByLoad() {
		t := metaByName[p.Name].accType
		groups[t] = append(groups[t], p)
	}
	nodesPer := placement.NodesPerGroup(groups, len(nodes))
	next := 0
	for _, t := range placement.AccessTypes {
		ps := groups[t]
		if len(ps) == 0 {
			continue
		}
		n := nodesPer[t]
		if n == 0 {
			n = 1
		}
		var slot []string
		for i := 0; i < n && next < len(nodes); i++ {
			slot = append(slot, nodes[next])
			next++
		}
		if len(slot) == 0 {
			slot = nodes[len(nodes)-1:]
		}
		for _, name := range slot {
			sc.Model.Nodes[name].Config = profiles[t]
		}
		assign := placement.AssignLPT(slot, ps, placement.PartitionsPerNodeCap(len(ps), len(slot)))
		for n, parts := range assign {
			for _, p := range parts {
				sc.Model.Placement[p.Name] = n
			}
		}
	}
}

// SetWorkloadActive switches one tenant on or off (phase 2 of the
// elasticity experiment).
func (sc *Scenario) SetWorkloadActive(name string, active bool) {
	for _, w := range sc.Model.Workloads {
		if w.Name == name {
			w.Active = active
		}
	}
}
