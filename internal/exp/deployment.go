// Package exp is the experiment harness: it assembles the paper's
// evaluation scenarios on top of the performance model
// (met/internal/perfmodel), drives them on the virtual clock, hosts the
// simulated Actuators for MeT and Tiramola, and contains one runner per
// table and figure of the paper's evaluation (Figure 1, Figure 4,
// Table 2, Figure 5, Figure 6).
package exp

import (
	"fmt"
	"math"
	"sort"

	"met/internal/hbase"
	"met/internal/metrics"
	"met/internal/perfmodel"
	"met/internal/sim"
)

// TickSample is one point of a throughput timeline.
type TickSample struct {
	At    sim.Time
	Total float64            // cluster ops/s
	PerWL map[string]float64 // per-workload ops/s
	Nodes int                // live (serving) nodes
}

// Deployment wraps a perfmodel.Model with time dynamics: per-tick
// solving, data growth, node lifecycle (boot, restart, warmup,
// termination), region moves with locality degradation, and major
// compactions with their disk load and duration. It implements
// metrics.Source so MeT's Monitor can poll it like a real cluster.
type Deployment struct {
	Sched *sim.Scheduler
	Model *perfmodel.Model
	// Tick is the solve interval (5 s by default).
	Tick sim.Time
	// RestartDuration is how long a region server restart takes.
	RestartDuration sim.Time
	// WarmupDuration is how long a restarted cache takes to warm.
	WarmupDuration sim.Time
	// CompactBytesPerSec is major-compaction speed (the paper observes
	// roughly 1 minute per GB).
	CompactBytesPerSec float64
	// MoveLocality is the locality a region drops to when moved to a
	// server that holds none of its data (replication means a little
	// of it is usually local by accident).
	MoveLocality float64
	// RampUp scales client threads linearly from 0 over this window.
	RampUp sim.Time

	// Series is the recorded timeline.
	Series []TickSample
	// OpsTotal accumulates completed operations per workload.
	OpsTotal map[string]float64

	lastSolution perfmodel.Solution
	// regionCum accumulates per-region request counters for Observe.
	regionCum map[string]*metrics.RequestCounts
	// nodeTypes is informative only (Observe does not need it).
	warmUntil map[string]sim.Time
	stopped   bool
}

// NewDeployment builds a deployment over a model with paper-calibrated
// dynamics.
func NewDeployment(sched *sim.Scheduler, model *perfmodel.Model) *Deployment {
	return &Deployment{
		Sched:              sched,
		Model:              model,
		Tick:               5 * sim.Second,
		RestartDuration:    45 * sim.Second,
		WarmupDuration:     90 * sim.Second,
		CompactBytesPerSec: 1e9 / 60, // 1 minute per GB
		MoveLocality:       0.25,
		RampUp:             0,
		OpsTotal:           make(map[string]float64),
		regionCum:          make(map[string]*metrics.RequestCounts),
		warmUntil:          make(map[string]sim.Time),
	}
}

// Start schedules ticking from the scheduler's current time until the
// deadline.
func (d *Deployment) Start(until sim.Time) {
	d.Sched.EachTick(d.Sched.Now(), d.Tick, func(now sim.Time) bool {
		if d.stopped || now > until {
			return false
		}
		d.step(now)
		return now+d.Tick <= until
	})
}

// Stop halts ticking at the next tick boundary.
func (d *Deployment) Stop() { d.stopped = true }

// step advances the deployment by one tick.
func (d *Deployment) step(now sim.Time) {
	// Ramp-up: scale thread counts during the warmup window.
	ramp := 1.0
	if d.RampUp > 0 && now < d.RampUp {
		ramp = float64(now) / float64(d.RampUp)
	}
	saved := make([]int, len(d.Model.Workloads))
	for i, w := range d.Model.Workloads {
		saved[i] = w.Threads
		w.Threads = int(math.Max(1, float64(w.Threads)*ramp))
	}
	// Cache warmup decay.
	for name, until := range d.warmUntil {
		n, ok := d.Model.Nodes[name]
		if !ok {
			delete(d.warmUntil, name)
			continue
		}
		if now >= until {
			n.ColdFraction = 0
			delete(d.warmUntil, name)
		} else {
			n.ColdFraction = float64(until-now) / float64(d.WarmupDuration)
		}
	}
	sol := d.Model.Solve()
	for i, w := range d.Model.Workloads {
		w.Threads = saved[i]
	}
	d.lastSolution = sol

	dt := d.Tick.Seconds()
	sample := TickSample{At: now, PerWL: make(map[string]float64), Nodes: d.liveNodes()}
	for _, w := range d.Model.Workloads {
		x := sol.ThroughputOps[w.Name]
		sample.PerWL[w.Name] = x
		sample.Total += x
		d.OpsTotal[w.Name] += x * dt
		if !w.Active {
			continue
		}
		// Accumulate per-region counters for the Monitor.
		for r, share := range w.RegionShares {
			cum := d.regionCum[r]
			if cum == nil {
				cum = &metrics.RequestCounts{}
				d.regionCum[r] = cum
			}
			ops := x * share * dt
			cum.Reads += int64(ops * (w.Mix.Read + w.Mix.RMW))
			cum.Writes += int64(ops * (w.Mix.Write + w.Mix.RMW))
			cum.Scans += int64(ops * w.Mix.Scan)
		}
		// Data growth from inserts (WorkloadD's fast-growing log).
		if w.GrowthBytesPerOp > 0 {
			growth := x * w.GrowthBytesPerOp * dt
			share := 1.0 / float64(len(w.RegionShares))
			for r := range w.RegionShares {
				if reg, ok := d.Model.Regions[r]; ok {
					reg.SizeBytes += growth * share
				}
			}
		}
	}
	d.Series = append(d.Series, sample)
}

// liveNodes counts online nodes.
func (d *Deployment) liveNodes() int {
	n := 0
	for _, node := range d.Model.Nodes {
		if !node.Offline {
			n++
		}
	}
	return n
}

// LastSolution returns the most recent solver output.
func (d *Deployment) LastSolution() perfmodel.Solution { return d.lastSolution }

// TotalOps sums completed operations across workloads.
func (d *Deployment) TotalOps() float64 {
	var sum float64
	for _, v := range d.OpsTotal {
		sum += v
	}
	return sum
}

// --- cluster actions -------------------------------------------------

// AddNode inserts a booted node (callers model boot delay via the
// scheduler or iaas.Provider before calling this). The cache starts cold.
func (d *Deployment) AddNode(name string, cfg hbase.ServerConfig) {
	d.Model.Nodes[name] = &perfmodel.NodePerf{Name: name, Config: cfg, ColdFraction: 1}
	d.warmUntil[name] = d.Sched.Now() + d.WarmupDuration
}

// RemoveNode drops a node; its regions must have been moved off first.
func (d *Deployment) RemoveNode(name string) error {
	for r, host := range d.Model.Placement {
		if host == name {
			return fmt.Errorf("exp: node %s still hosts region %s", name, r)
		}
	}
	delete(d.Model.Nodes, name)
	delete(d.warmUntil, name)
	return nil
}

// MoveRegion reassigns a region. Its files stay behind, so locality
// drops to MoveLocality (unless it is moving back onto data it already
// had, which this model does not track — a documented simplification).
func (d *Deployment) MoveRegion(region, node string) error {
	if _, ok := d.Model.Regions[region]; !ok {
		return fmt.Errorf("exp: unknown region %s", region)
	}
	if _, ok := d.Model.Nodes[node]; !ok {
		return fmt.Errorf("exp: unknown node %s", node)
	}
	if d.Model.Placement[region] == node {
		return nil
	}
	d.Model.Placement[region] = node
	d.Model.Regions[region].Locality = d.MoveLocality
	return nil
}

// RestartNode takes a node offline for RestartDuration, then brings it
// back with the new configuration and a cold cache. onDone (optional)
// fires when the node is serving again.
func (d *Deployment) RestartNode(name string, cfg hbase.ServerConfig, onDone func(now sim.Time)) error {
	n, ok := d.Model.Nodes[name]
	if !ok {
		return fmt.Errorf("exp: unknown node %s", name)
	}
	n.Offline = true
	d.Sched.ScheduleAfter(d.RestartDuration, func(now sim.Time) {
		if n2, ok := d.Model.Nodes[name]; ok {
			n2.Offline = false
			n2.Config = cfg
			n2.ColdFraction = 1
			d.warmUntil[name] = now + d.WarmupDuration
		}
		if onDone != nil {
			onDone(now)
		}
	})
	return nil
}

// MajorCompact rewrites a region's data locally: it applies disk load on
// the hosting node at CompactBytesPerSec for size/rate, then restores the
// region's locality to 1. onDone (optional) fires at completion.
func (d *Deployment) MajorCompact(region string, onDone func(now sim.Time)) error {
	r, ok := d.Model.Regions[region]
	if !ok {
		return fmt.Errorf("exp: unknown region %s", region)
	}
	host := d.Model.Placement[region]
	n, ok := d.Model.Nodes[host]
	if !ok {
		return fmt.Errorf("exp: region %s unplaced", region)
	}
	duration := sim.Time(float64(sim.Second) * r.SizeBytes / d.CompactBytesPerSec)
	n.BackgroundDiskBytesPerSec += d.CompactBytesPerSec
	d.Sched.ScheduleAfter(duration, func(now sim.Time) {
		if n2, ok := d.Model.Nodes[host]; ok {
			n2.BackgroundDiskBytesPerSec -= d.CompactBytesPerSec
			if n2.BackgroundDiskBytesPerSec < 0 {
				n2.BackgroundDiskBytesPerSec = 0
			}
		}
		if r2, ok := d.Model.Regions[region]; ok {
			r2.Locality = 1
		}
		if onDone != nil {
			onDone(now)
		}
	})
	return nil
}

// --- metrics.Source --------------------------------------------------

// Observe implements metrics.Source over the last solution.
func (d *Deployment) Observe(now sim.Time) ([]metrics.NodeObservation, []metrics.RegionObservation) {
	sol := d.lastSolution
	var nodes []metrics.NodeObservation
	names := make([]string, 0, len(d.Model.Nodes))
	for n := range d.Model.Nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		n := d.Model.Nodes[name]
		if n.Offline {
			continue // a down node reports nothing, like real Ganglia
		}
		// Locality index: byte-weighted over hosted regions.
		var bytes, local float64
		for r, host := range d.Model.Placement {
			if host != name {
				continue
			}
			reg := d.Model.Regions[r]
			bytes += reg.SizeBytes
			local += reg.SizeBytes * reg.Locality
		}
		loc := 1.0
		if bytes > 0 {
			loc = local / bytes
		}
		nodes = append(nodes, metrics.NodeObservation{
			At:   now,
			Node: name,
			System: metrics.SystemMetrics{
				CPUUtilization: sol.NodeCPU[name],
				IOWait:         sol.NodeDisk[name],
				MemoryUsage:    0.5,
			},
			Locality: loc,
		})
	}
	var regions []metrics.RegionObservation
	rnames := make([]string, 0, len(d.Model.Placement))
	for r := range d.Model.Placement {
		rnames = append(rnames, r)
	}
	sort.Strings(rnames)
	for _, r := range rnames {
		cum := d.regionCum[r]
		if cum == nil {
			cum = &metrics.RequestCounts{}
		}
		regions = append(regions, metrics.RegionObservation{
			At:       now,
			Region:   r,
			Node:     d.Model.Placement[r],
			Requests: *cum, // cumulative; core.Monitor diffs it
			SizeMB:   d.Model.Regions[r].SizeBytes / (1 << 20),
		})
	}
	return nodes, regions
}
