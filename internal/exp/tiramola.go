package exp

import (
	"fmt"
	"sort"

	"met/internal/autoscale"
	"met/internal/hbase"
	"met/internal/iaas"
	"met/internal/sim"
)

// TiramolaRunner drives the baseline autoscaler over a Deployment the way
// Section 6.4 describes: it watches system metrics only, adds a node when
// the average CPU is high (after a VM boot delay) and removes one only
// when every node is underutilized. Placement stays with the database's
// random balancer — after every membership change the regions are
// redistributed for even counts, destroying locality — and nodes are
// never reconfigured nor compacted.
type TiramolaRunner struct {
	D          *Deployment
	Controller *autoscale.Tiramola
	Provider   *iaas.Provider
	RNG        *sim.RNG

	nameSeq int
	// Adds and Removes record the membership actions taken.
	Adds    []sim.Time
	Removes []sim.Time
}

// NewTiramolaRunner assembles the baseline over a deployment.
func NewTiramolaRunner(d *Deployment, params autoscale.Params, prov *iaas.Provider, rng *sim.RNG) *TiramolaRunner {
	return &TiramolaRunner{
		D:          d,
		Controller: autoscale.NewTiramola(params),
		Provider:   prov,
		RNG:        rng,
	}
}

// Start schedules the evaluation loop every 30 s until deadline.
func (t *TiramolaRunner) Start(sched *sim.Scheduler, start, deadline sim.Time) {
	sched.EachTick(start, 30*sim.Second, func(now sim.Time) bool {
		if now > deadline {
			return false
		}
		t.Tick(now)
		return true
	})
}

// Tick evaluates the thresholds against the latest modeled CPU.
func (t *TiramolaRunner) Tick(now sim.Time) {
	sol := t.D.LastSolution()
	cpus := make(map[string]float64)
	for name, n := range t.D.Model.Nodes {
		if !n.Offline {
			// Tiramola watches system metrics; a node pegged on disk
			// I/O is as saturated as one pegged on CPU.
			u := sol.NodeCPU[name]
			if sol.NodeDisk[name] > u {
				u = sol.NodeDisk[name]
			}
			cpus[name] = u
		}
	}
	switch t.Controller.Evaluate(cpus) {
	case autoscale.ActionAddNode:
		t.addNode(now)
	case autoscale.ActionRemoveNode:
		t.removeNode(now)
	}
}

func (t *TiramolaRunner) addNode(now sim.Time) {
	name := fmt.Sprintf("rs-tira-%03d", t.nameSeq)
	t.nameSeq++
	ready := func() {
		t.D.AddNode(name, hbase.DefaultServerConfig())
		t.rebalance()
		t.Adds = append(t.Adds, t.D.Sched.Now())
	}
	if t.Provider == nil {
		ready()
		return
	}
	if _, err := t.Provider.Launch(name, "m1.medium", func(*iaas.Instance) { ready() }); err != nil {
		ready()
	}
}

func (t *TiramolaRunner) removeNode(now sim.Time) {
	// Tiramola retracts the most recently added instance.
	var names []string
	for n := range t.D.Model.Nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) <= 1 {
		return
	}
	victim := names[len(names)-1]
	// Its regions go back to the random balancer.
	for r, host := range t.D.Model.Placement {
		if host == victim {
			dst := t.randomOtherNode(victim)
			if dst != "" {
				_ = t.D.MoveRegion(r, dst)
			}
		}
	}
	if err := t.D.RemoveNode(victim); err == nil {
		t.Removes = append(t.Removes, now)
		t.rebalance()
	}
}

func (t *TiramolaRunner) randomOtherNode(exclude string) string {
	var names []string
	for n, node := range t.D.Model.Nodes {
		if n != exclude && !node.Offline {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return ""
	}
	return names[t.RNG.Intn(len(names))]
}

// rebalance applies HBase's random balancer: even region counts, random
// identity, locality destroyed for every region that moves.
func (t *TiramolaRunner) rebalance() {
	var nodes []string
	for n, node := range t.D.Model.Nodes {
		if !node.Offline {
			nodes = append(nodes, n)
		}
	}
	sort.Strings(nodes)
	if len(nodes) == 0 {
		return
	}
	var regions []string
	for r := range t.D.Model.Placement {
		regions = append(regions, r)
	}
	sort.Strings(regions)
	t.RNG.Shuffle(len(regions), func(i, j int) { regions[i], regions[j] = regions[j], regions[i] })
	for i, r := range regions {
		_ = t.D.MoveRegion(r, nodes[i%len(nodes)])
	}
}
