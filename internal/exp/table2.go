package exp

import (
	"fmt"
	"io"

	"met/internal/core"
	"met/internal/hbase"
	"met/internal/perfmodel"
	"met/internal/sim"
)

// tpccOpsPerTx is the average number of record operations one TPC-C
// transaction issues under the standard mix (NewOrder ~25, Payment ~7,
// Delivery ~40, OrderStatus ~5, StockLevel ~22 — weighted ≈ 17).
const tpccOpsPerTx = 17.0

// tpccNewOrderShare is the NewOrder fraction of the standard mix.
const tpccNewOrderShare = 0.45

// BuildTPCCScenario models the Section 6.3 deployment: 30 warehouses
// (≈15 GB) on 6 region servers, 300 clients, tables horizontally
// partitioned by warehouse. The model splits the client population into
// four classes matching the table groups' very different access
// patterns, each routed over 6 warehouse-range regions (item is one
// global region):
//
//	item        — read-only lookups (the hottest read traffic);
//	stock       — read-modify-write per order line;
//	orders      — orders/order_line/new_order/history, insert-heavy;
//	customer    — customer/district/warehouse, mixed with hot rows.
func BuildTPCCScenario(servers int) *Scenario {
	sc := &Scenario{Model: perfmodel.NewModel()}
	type group struct {
		name      string
		mix       perfmodel.OpMix
		share     float64 // of total record operations
		sizeBytes float64
		regions   int
		scanLen   float64
		growth    float64 // bytes added per op
	}
	groups := []group{
		{name: "item", mix: perfmodel.OpMix{Read: 1}, share: 0.26, sizeBytes: 0.12e9, regions: 1},
		{name: "stock", mix: perfmodel.OpMix{RMW: 1}, share: 0.27, sizeBytes: 2.0e9, regions: servers},
		{name: "orders", mix: perfmodel.OpMix{Read: 0.05, Write: 0.90, Scan: 0.05}, share: 0.32, sizeBytes: 10.0e9, regions: servers, scanLen: 12, growth: 350},
		{name: "customer", mix: perfmodel.OpMix{Read: 0.35, Write: 0.15, RMW: 0.50}, share: 0.15, sizeBytes: 2.5e9, regions: servers},
	}
	const totalThreads = 300
	for _, g := range groups {
		wl := &perfmodel.WorkloadPerf{
			Name:           "tpcc-" + g.name,
			Threads:        int(float64(totalThreads) * g.share),
			Mix:            g.mix,
			RecordBytes:    450, // TPC-C rows are a few hundred bytes
			AvgScanRecords: g.scanLen,
			RegionShares:   make(map[string]float64),
			Active:         true,
		}
		if wl.AvgScanRecords == 0 {
			wl.AvgScanRecords = 1
		}
		wl.GrowthBytesPerOp = g.growth
		for i := 0; i < g.regions; i++ {
			rname := fmt.Sprintf("tpcc_%s,w%d", g.name, i)
			sc.Model.Regions[rname] = &perfmodel.RegionPerf{
				Name:      rname,
				SizeBytes: g.sizeBytes / float64(g.regions),
				// NURand gives mild skew within a warehouse range.
				HotDataFrac:    0.25,
				HotTrafficFrac: 0.55,
				Locality:       1,
			}
			wl.RegionShares[rname] = 1 / float64(g.regions)
			sc.Regions = append(sc.Regions, regionMeta{name: rname, share: wl.RegionShares[rname]})
		}
		sc.Model.Workloads = append(sc.Model.Workloads, wl)
	}
	for i := 0; i < servers; i++ {
		name := fmt.Sprintf("rs%d", i)
		sc.Model.Nodes[name] = &perfmodel.NodePerf{Name: name, Config: tpccBaselineConfig()}
	}
	// The usual distributed-TPC-C placement the paper describes: node i
	// serves warehouse range i of every table (5 warehouses per region
	// server), with one admin adjustment a tuned baseline would make:
	// the insert-heaviest range of the item host's warehouse moves off
	// it, since the item region (the hottest single region) lives there.
	for r := range sc.Model.Regions {
		var idx int
		fmt.Sscanf(r[len(r)-2:], "w%d", &idx)
		sc.Model.Placement[r] = fmt.Sprintf("rs%d", idx%servers)
	}
	sc.Model.Placement["tpcc_item,w0"] = "rs0"
	sc.Model.Placement["tpcc_orders,w0"] = fmt.Sprintf("rs%d", servers-1)
	return sc
}

// tpccBaselineConfig is the paper's experimentally selected homogeneous
// configuration for TPC-C: 50% cache, 15% memstore, 32 KB blocks.
func tpccBaselineConfig() hbase.ServerConfig {
	return hbase.ServerConfig{
		HeapBytes:          3 << 30,
		BlockCacheFraction: 0.50,
		MemstoreFraction:   0.15,
		BlockBytes:         32 << 10,
		Handlers:           10,
	}
}

// Table2Result reports the PyTPCC experiment.
type Table2Result struct {
	ManualHomogeneous float64 // tpmC, setting (i)
	MeTWithReconfig   float64 // tpmC, setting (ii)
	MeTNoReconfig     float64 // tpmC, setting (iii)
}

// RunTable2 reproduces Table 2: (i) a 45-minute run with the manual
// homogeneous configuration; (ii) the same start, with MeT attached at
// minute 4; (iii) a full run under the distribution and configuration
// MeT converged to, without any reconfiguration overhead.
func RunTable2(seed uint64) *Table2Result {
	res := &Table2Result{}
	duration := 45 * sim.Minute

	// Setting (i): manual homogeneous baseline.
	res.ManualHomogeneous = tpmcOf(runTPCC(seed, duration, nil))

	// Setting (ii): MeT from minute 4.
	withMeT := func(d *Deployment, sched *sim.Scheduler) *MeTRunner {
		params := core.DefaultParams()
		params.MinNodes = len(d.Model.Nodes)
		params.MaxNodes = len(d.Model.Nodes) // Table 2 studies reconfiguration only
		runner := NewMeTRunner(d, params, nil)
		for n := range d.Model.Nodes {
			runner.Monitor.SetNodeType(n, 0)
		}
		runner.Start(sched, 4*sim.Minute, duration)
		return runner
	}
	var converged *perfmodel.Model
	res.MeTWithReconfig = tpmcOf(runTPCCAnd(seed, duration, withMeT, &converged))

	// Setting (iii): MeT's converged configuration from the start.
	if converged != nil {
		sched := sim.NewScheduler()
		sc := BuildTPCCScenario(6)
		// Copy configs and placement from the converged model; locality
		// fully restored (the paper's setting iii starts clean).
		for name, n := range converged.Nodes {
			if _, ok := sc.Model.Nodes[name]; ok {
				sc.Model.Nodes[name].Config = n.Config
			}
		}
		for r, host := range converged.Placement {
			if _, ok := sc.Model.Nodes[host]; ok {
				sc.Model.Placement[r] = host
			}
		}
		d := NewDeployment(sched, sc.Model)
		d.RampUp = 2 * sim.Minute
		d.Start(duration)
		sched.RunUntil(duration)
		res.MeTNoReconfig = tpmcOf(d)
	}
	return res
}

// runTPCC executes one plain 45-minute TPC-C run.
func runTPCC(seed uint64, duration sim.Time, _ *struct{}) *Deployment {
	return runTPCCAnd(seed, duration, nil, nil)
}

// runTPCCAnd optionally attaches a controller factory to the run.
func runTPCCAnd(seed uint64, duration sim.Time, attach func(*Deployment, *sim.Scheduler) *MeTRunner, out **perfmodel.Model) *Deployment {
	sched := sim.NewScheduler()
	sc := BuildTPCCScenario(6)
	d := NewDeployment(sched, sc.Model)
	d.RampUp = 2 * sim.Minute
	d.Start(duration)
	if attach != nil {
		attach(d, sched)
	}
	sched.RunUntil(duration)
	if out != nil {
		*out = sc.Model
	}
	return d
}

// tpmcOf converts a deployment's completed record operations into tpmC.
func tpmcOf(d *Deployment) float64 {
	minutes := 0.0
	if len(d.Series) > 0 {
		minutes = d.Series[len(d.Series)-1].At.Minutes()
	}
	if minutes <= 0 {
		return 0
	}
	tx := d.TotalOps() / tpccOpsPerTx
	return tx * tpccNewOrderShare / minutes
}

// Print renders Table 2.
func (r *Table2Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Table 2 — PyTPCC average throughput (tpmC), 30 warehouses, 6 region servers, 300 clients, 45 min\n")
	fmt.Fprintf(w, "  i)   Manual-Homogeneous           %8.0f   (paper: 25380)\n", r.ManualHomogeneous)
	fmt.Fprintf(w, "  ii)  MeT with reconfig overhead   %8.0f   (paper: 31020)\n", r.MeTWithReconfig)
	fmt.Fprintf(w, "  iii) MeT w/o reconfig overhead    %8.0f   (paper: 33720)\n", r.MeTNoReconfig)
	if r.ManualHomogeneous > 0 {
		fmt.Fprintf(w, "  Het improvement (iii/i): %.0f%% (paper: 33%%); reconfig overhead (1 - ii/iii): %.0f%% (paper: 8%%)\n",
			100*(r.MeTNoReconfig/r.ManualHomogeneous-1), 100*(1-r.MeTWithReconfig/r.MeTNoReconfig))
	}
}
