package exp

import (
	"fmt"
	"io"
	"sort"

	"met/internal/core"
	"met/internal/metrics"
	"met/internal/placement"
	"met/internal/sim"
)

// WorkloadNames lists the six YCSB tenants in report order.
var WorkloadNames = []string{"A", "B", "C", "D", "E", "F"}

// Fig1Result holds the motivation experiment's output: for each strategy
// and each workload (plus Total), the CDF percentile summary over the
// runs, as plotted in the paper's Figure 1.
type Fig1Result struct {
	Runs int
	// Summary[strategy][workload] -> percentile summary; workload
	// "Total" aggregates the six.
	Summary map[Strategy]map[string]metrics.CDF
	// Raw[strategy][workload] -> per-run mean throughput (ops/s).
	Raw map[Strategy]map[string][]float64
}

// RunFig1 reproduces Figure 1: the three strategies of Section 3.3 on a
// 5-server cluster under the six simultaneous YCSB workloads, `runs`
// 30-minute runs each (the paper uses 5), reporting the 5/25/50/75/90th
// percentiles of per-run mean throughput.
func RunFig1(runs int, seed uint64) *Fig1Result {
	res := &Fig1Result{
		Runs:    runs,
		Summary: make(map[Strategy]map[string]metrics.CDF),
		Raw:     make(map[Strategy]map[string][]float64),
	}
	for _, strat := range []Strategy{RandomHomogeneous, ManualHomogeneous, ManualHeterogeneous} {
		raw := make(map[string][]float64)
		for run := 0; run < runs; run++ {
			per, total := runFig1Once(strat, seed+uint64(run)*101)
			for _, w := range WorkloadNames {
				raw[w] = append(raw[w], per[w])
			}
			raw["Total"] = append(raw["Total"], total)
		}
		res.Raw[strat] = raw
		sum := make(map[string]metrics.CDF)
		for k, vs := range raw {
			sum[k] = metrics.NewCDF(vs)
		}
		res.Summary[strat] = sum
	}
	return res
}

// runFig1Once executes one 30-minute run of one strategy.
func runFig1Once(strat Strategy, seed uint64) (map[string]float64, float64) {
	sc := BuildYCSBScenario(5, 1)
	sc.ApplyStrategy(strat, sim.NewRNG(seed))
	sched := sim.NewScheduler()
	d := NewDeployment(sched, sc.Model)
	d.RampUp = 2 * sim.Minute
	d.Start(30 * sim.Minute)
	sched.RunUntil(30 * sim.Minute)
	skip := int((2 * sim.Minute) / d.Tick) // drop ramp-up samples
	return meanTailPerWL(d.Series, skip), meanTail(d.Series, skip)
}

// Print renders the Figure 1 table.
func (r *Fig1Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 1 — Manual strategies, %d runs, 5 region servers, 6 YCSB workloads\n", r.Runs)
	fmt.Fprintf(w, "Throughput (ops/s), percentiles over runs [p5 p25 p50 p75 p90]:\n")
	cols := append(append([]string(nil), WorkloadNames...), "Total")
	for _, strat := range []Strategy{RandomHomogeneous, ManualHomogeneous, ManualHeterogeneous} {
		fmt.Fprintf(w, "\n%s:\n", strat)
		for _, c := range cols {
			cdf := r.Summary[strat][c]
			fmt.Fprintf(w, "  %-6s p5=%8.0f p25=%8.0f p50=%8.0f p75=%8.0f p90=%8.0f\n",
				c, cdf.P5, cdf.P25, cdf.P50, cdf.P75, cdf.P90)
		}
	}
	het := r.Summary[ManualHeterogeneous]["Total"].P50
	hom := r.Summary[ManualHomogeneous]["Total"].P50
	rnd := r.Summary[RandomHomogeneous]["Total"].P50
	fmt.Fprintf(w, "\nHeadline ratios (p50 totals): Het/ManualHom = %.2f (paper: ~1.35), Het/Random = %.2f (paper: >2)\n",
		het/hom, het/rnd)
	fmt.Fprintf(w, "WorkloadE scans/s p50: hom=%.0f het=%.0f (paper: ~100 -> ~1350)\n",
		r.Summary[ManualHomogeneous]["E"].P50, r.Summary[ManualHeterogeneous]["E"].P50)
}

// Fig4Result holds the convergence experiment: minute-by-minute total
// throughput for MeT (starting from Random-Homogeneous), against static
// Manual-Homogeneous and Manual-Heterogeneous runs — the paper's
// Figure 4.
type Fig4Result struct {
	// Minutes[i] is minute i+1's mean throughput for each series.
	MeT       []float64
	ManualHom []float64
	ManualHet []float64
	// ReconfigStart/End bracket MeT's observed reconfiguration window.
	ReconfigStart, ReconfigEnd sim.Time
	// MinDuringReconfig is the lowest per-minute MeT throughput during
	// reconfiguration (the paper reports ~7,500 ops/s).
	MinDuringReconfig float64
}

// RunFig4 reproduces Figure 4: a Random-Homogeneous cluster; MeT starts
// after the 2-minute ramp-up and reconfigures on-the-fly; the run lasts
// 30 minutes. The best-of-runs Manual-* series use the same machinery
// without MeT.
func RunFig4(seed uint64) *Fig4Result {
	res := &Fig4Result{}

	// MeT run.
	sc := BuildYCSBScenario(5, 1)
	sc.ApplyStrategy(RandomHomogeneous, sim.NewRNG(seed))
	sched := sim.NewScheduler()
	d := NewDeployment(sched, sc.Model)
	d.RampUp = 2 * sim.Minute
	params := core.DefaultParams()
	params.MinNodes = 5
	params.MaxNodes = 5 // Figure 4 studies reconfiguration, not scaling
	runner := NewMeTRunner(d, params, nil)
	seedTypes(runner, sc)
	d.Start(30 * sim.Minute)
	runner.Start(sched, 2*sim.Minute, 30*sim.Minute)
	sched.RunUntil(30 * sim.Minute)
	res.MeT = perMinute(d.Series, 30)

	// Reconfiguration window: first actuation start to last busy tick.
	start, end := reconfigWindow(d, runner)
	res.ReconfigStart, res.ReconfigEnd = start, end
	res.MinDuringReconfig = minBetween(d.Series, start, end)

	// Static baselines (best of 3 runs, as the paper picked best runs).
	res.ManualHom = bestStaticRun(ManualHomogeneous, seed, 3)
	res.ManualHet = bestStaticRun(ManualHeterogeneous, seed, 3)
	return res
}

// seedTypes tells the Monitor the initial (homogeneous) profile of every
// node so the first reconfiguration diff is computed correctly.
func seedTypes(m *MeTRunner, sc *Scenario) {
	for _, n := range sc.NodeNames() {
		m.Monitor.SetNodeType(n, placement.ReadWrite)
	}
}

// perMinute folds tick samples into per-minute mean totals.
func perMinute(series []TickSample, minutes int) []float64 {
	out := make([]float64, minutes)
	counts := make([]int, minutes)
	for _, s := range series {
		m := int(s.At / sim.Minute)
		if m >= 0 && m < minutes {
			out[m] += s.Total
			counts[m]++
		}
	}
	for i := range out {
		if counts[i] > 0 {
			out[i] /= float64(counts[i])
		}
	}
	return out
}

// reconfigWindow reports when MeT's first actuation began and ended,
// extended to cover any in-flight major compactions (background disk
// load visible in the deployment).
func reconfigWindow(d *Deployment, m *MeTRunner) (sim.Time, sim.Time) {
	if len(m.Actuator.BusyWindows) == 0 {
		return 0, 0
	}
	w := m.Actuator.BusyWindows[0]
	start, end := w[0], w[1]
	if end == 0 {
		end = d.Sched.Now() // still busy at run end
	}
	return start, end
}

// minBetween returns the minimum total throughput between two times.
func minBetween(series []TickSample, from, to sim.Time) float64 {
	min := -1.0
	for _, s := range series {
		if s.At < from || s.At > to {
			continue
		}
		if min < 0 || s.Total < min {
			min = s.Total
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// bestStaticRun returns the per-minute series of the best (by mean) of n
// static runs of a strategy.
func bestStaticRun(strat Strategy, seed uint64, n int) []float64 {
	var best []float64
	bestMean := -1.0
	for i := 0; i < n; i++ {
		sc := BuildYCSBScenario(5, 1)
		sc.ApplyStrategy(strat, sim.NewRNG(seed+uint64(i)*31))
		sched := sim.NewScheduler()
		d := NewDeployment(sched, sc.Model)
		d.RampUp = 2 * sim.Minute
		d.Start(30 * sim.Minute)
		sched.RunUntil(30 * sim.Minute)
		mean := meanTail(d.Series, int((2*sim.Minute)/d.Tick))
		if mean > bestMean {
			bestMean = mean
			best = perMinute(d.Series, 30)
		}
	}
	return best
}

// Print renders the Figure 4 series.
func (r *Fig4Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 4 — Convergence: MeT vs manual configurations (ops/s per minute)\n")
	fmt.Fprintf(w, "%-6s %12s %12s %12s\n", "minute", "MeT", "Manual-Hom", "Manual-Het")
	for i := range r.MeT {
		fmt.Fprintf(w, "%-6d %12.0f %12.0f %12.0f\n", i+1, r.MeT[i], at(r.ManualHom, i), at(r.ManualHet, i))
	}
	fmt.Fprintf(w, "\nReconfiguration window: %.0f–%.0f min (paper: 2–8 min); min throughput during it: %.0f ops/s (paper: ~7500)\n",
		r.ReconfigStart.Minutes(), r.ReconfigEnd.Minutes(), r.MinDuringReconfig)
	// Post-reconfiguration MeT vs Manual-Het.
	lastN := 0.0
	lastHet := 0.0
	for i := len(r.MeT) - 5; i < len(r.MeT); i++ {
		if i >= 0 {
			lastN += at(r.MeT, i)
			lastHet += at(r.ManualHet, i)
		}
	}
	if lastHet > 0 {
		fmt.Fprintf(w, "Final-5-minute MeT/Manual-Het ratio: %.2f (paper: ~1.0)\n", lastN/lastHet)
	}
}

func at(s []float64, i int) float64 {
	if i < 0 || i >= len(s) {
		return 0
	}
	return s[i]
}

// sortStrategies is a helper for deterministic map iteration in reports.
func sortStrategies(m map[Strategy]map[string]metrics.CDF) []Strategy {
	var out []Strategy
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
