package exp

import (
	"fmt"
	"io"

	"met/internal/autoscale"
	"met/internal/core"
	"met/internal/iaas"
	"met/internal/sim"
)

// ElasticityRun is one system's 60-minute elasticity timeline.
type ElasticityRun struct {
	System string
	// PerMinute total throughput (ops/s) and node counts.
	Throughput []float64
	Nodes      []int
	// CumulativeOps[i] is total completed operations by minute i+1.
	CumulativeOps []float64
	// PeakNodes is the largest cluster the system grew to.
	PeakNodes int
	// FinalNodes is the cluster size at the end of phase 2.
	FinalNodes int
}

// ElasticityResult reproduces Figures 5 and 6: MeT against Tiramola on
// an OpenStack-backed cluster under overload, then progressive underload.
type ElasticityResult struct {
	MeT      ElasticityRun
	Tiramola ElasticityRun
	// Phase1End marks the end of the overload phase (33 min).
	Phase1End sim.Time
}

// elasticityMinutes is the experiment length (the paper's ~60 minutes).
const elasticityMinutes = 60

// RunElasticity executes both systems on identical scenarios: 6 region
// servers (plus the master VM the simulation does not bill), a YCSB mix
// sized to overload them (the paper saturates all clients at ~22 kops/s),
// VM boot delay for every addition, and the paper's phase-2 switch-offs:
// WorkloadE and WorkloadF at minute 33, WorkloadB (and the throttled D)
// at 43, WorkloadA at 53, leaving only WorkloadC.
func RunElasticity(seed uint64) *ElasticityResult {
	res := &ElasticityResult{Phase1End: 33 * sim.Minute}
	res.MeT = runElasticityMeT(seed)
	res.Tiramola = runElasticityTiramola(seed)
	return res
}

// elasticityScenario builds the overloaded starting cluster.
func elasticityScenario(seed uint64) (*Scenario, *sim.Scheduler, *Deployment, *iaas.Provider) {
	sc := BuildYCSBScenario(6, 1.2) // extra client threads overload the 6 servers
	sc.ApplyStrategy(ManualHomogeneous, sim.NewRNG(seed))
	sched := sim.NewScheduler()
	d := NewDeployment(sched, sc.Model)
	d.RampUp = 2 * sim.Minute
	prov := iaas.NewProvider(sched, 90*sim.Second, 16)
	// Bill the pre-existing instances so quota covers them too.
	for range sc.NodeNames() {
		_, _ = prov.Launch("pre-existing", "m1.medium", nil)
	}
	scheduleSwitchOffs(sched, sc)
	return sc, sched, d, prov
}

// scheduleSwitchOffs applies the paper's phase-2 schedule.
func scheduleSwitchOffs(sched *sim.Scheduler, sc *Scenario) {
	sched.ScheduleAt(33*sim.Minute, func(sim.Time) {
		sc.SetWorkloadActive("E", false)
		sc.SetWorkloadActive("F", false)
	})
	sched.ScheduleAt(43*sim.Minute, func(sim.Time) {
		sc.SetWorkloadActive("B", false)
		sc.SetWorkloadActive("D", false)
	})
	sched.ScheduleAt(53*sim.Minute, func(sim.Time) {
		sc.SetWorkloadActive("A", false)
	})
}

func runElasticityMeT(seed uint64) ElasticityRun {
	sc, sched, d, prov := elasticityScenario(seed)
	params := core.DefaultParams()
	params.MinNodes = 6
	params.MaxNodes = 12
	runner := NewMeTRunner(d, params, prov)
	seedTypes(runner, sc)
	d.Start(elasticityMinutes * sim.Minute)
	runner.Start(sched, 2*sim.Minute, elasticityMinutes*sim.Minute)
	sched.RunUntil(elasticityMinutes * sim.Minute)
	return summarizeElasticity("MeT", d)
}

func runElasticityTiramola(seed uint64) ElasticityRun {
	_, sched, d, prov := elasticityScenario(seed)
	params := autoscale.DefaultParams()
	params.MinNodes = 6
	params.MaxNodes = 12
	// Trigger on sustained moderate pressure; with HBase's random
	// balancer wrecking locality after every addition, waiting for 85%
	// average CPU would starve the controller of signal entirely.
	params.CPUHigh = 0.72
	runner := NewTiramolaRunner(d, params, prov, sim.NewRNG(seed+9))
	d.Start(elasticityMinutes * sim.Minute)
	runner.Start(sched, 2*sim.Minute, elasticityMinutes*sim.Minute)
	sched.RunUntil(elasticityMinutes * sim.Minute)
	return summarizeElasticity("Tiramola", d)
}

func summarizeElasticity(system string, d *Deployment) ElasticityRun {
	run := ElasticityRun{System: system}
	run.Throughput = perMinute(d.Series, elasticityMinutes)
	run.Nodes = make([]int, elasticityMinutes)
	counts := make([]int, elasticityMinutes)
	cum := 0.0
	run.CumulativeOps = make([]float64, elasticityMinutes)
	for _, s := range d.Series {
		m := int(s.At / sim.Minute)
		if m < 0 || m >= elasticityMinutes {
			continue
		}
		if s.Nodes > run.Nodes[m] {
			run.Nodes[m] = s.Nodes
		}
		counts[m]++
	}
	for i, thr := range run.Throughput {
		cum += thr * 60
		run.CumulativeOps[i] = cum
	}
	for _, n := range run.Nodes {
		if n > run.PeakNodes {
			run.PeakNodes = n
		}
	}
	if len(run.Nodes) > 0 {
		run.FinalNodes = run.Nodes[len(run.Nodes)-1]
	}
	return run
}

// Print renders the Figure 5 and Figure 6 series.
func (r *ElasticityResult) Print(w io.Writer) {
	p1 := int(r.Phase1End / sim.Minute)
	metCum := r.MeT.CumulativeOps[p1-1]
	tiraCum := r.Tiramola.CumulativeOps[p1-1]
	fmt.Fprintf(w, "Figure 5 — Cumulative operations after phase 1 (%d min):\n", p1)
	fmt.Fprintf(w, "  MeT      %12.0f ops\n", metCum)
	fmt.Fprintf(w, "  Tiramola %12.0f ops\n", tiraCum)
	if tiraCum > 0 {
		fmt.Fprintf(w, "  MeT advantage: +%.0f kops = +%.0f%% (paper: +706 kops = +31%%)\n",
			(metCum-tiraCum)/1000, 100*(metCum/tiraCum-1))
	}
	fmt.Fprintf(w, "\nFigure 6 — Throughput and cluster size over time:\n")
	fmt.Fprintf(w, "%-7s %10s %6s %12s %6s\n", "minute", "MeT ops/s", "nodes", "Tira ops/s", "nodes")
	for i := 0; i < elasticityMinutes; i++ {
		fmt.Fprintf(w, "%-7d %10.0f %6d %12.0f %6d\n", i+1,
			at(r.MeT.Throughput, i), atInt(r.MeT.Nodes, i),
			at(r.Tiramola.Throughput, i), atInt(r.Tiramola.Nodes, i))
	}
	fmt.Fprintf(w, "\nPeak nodes: MeT %d (paper: 9), Tiramola %d (paper: 11)\n", r.MeT.PeakNodes, r.Tiramola.PeakNodes)
	fmt.Fprintf(w, "Final nodes: MeT %d (paper: back to 6), Tiramola %d (paper: stays high)\n", r.MeT.FinalNodes, r.Tiramola.FinalNodes)
}

func atInt(s []int, i int) int {
	if i < 0 || i >= len(s) {
		return 0
	}
	return s[i]
}
