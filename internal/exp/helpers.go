package exp

import "met/internal/metrics"

// metricsCounts is a small constructor keeping scenario code readable.
func metricsCounts(reads, writes, scans int64) metrics.RequestCounts {
	return metrics.RequestCounts{Reads: reads, Writes: writes, Scans: scans}
}

// meanTail averages the Total throughput of the samples from a timeline,
// skipping the first skip samples (ramp-up).
func meanTail(series []TickSample, skip int) float64 {
	if skip >= len(series) {
		return 0
	}
	var sum float64
	for _, s := range series[skip:] {
		sum += s.Total
	}
	return sum / float64(len(series)-skip)
}

// meanTailPerWL averages per-workload throughput, skipping ramp-up.
func meanTailPerWL(series []TickSample, skip int) map[string]float64 {
	out := make(map[string]float64)
	if skip >= len(series) {
		return out
	}
	for _, s := range series[skip:] {
		for w, x := range s.PerWL {
			out[w] += x
		}
	}
	for w := range out {
		out[w] /= float64(len(series) - skip)
	}
	return out
}
