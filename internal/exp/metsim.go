package exp

import (
	"fmt"
	"sort"

	"met/internal/core"
	"met/internal/iaas"
	"met/internal/placement"
	"met/internal/sim"
)

// SimActuator implements core.Actuator against the simulated Deployment,
// with real actuation dynamics: IaaS boot delays for added nodes, one-at-
// a-time drain + restart for reconfigurations (data stays available but
// the restarting server is gone for RestartDuration), final placement
// moves, node removals, and major compactions — each unfolding on the
// virtual clock. While a plan is in flight the actuator reports Busy and
// ignores further Apply calls, mirroring how the paper's 6-minute
// reconfigurations spanned several decision intervals.
type SimActuator struct {
	D        *Deployment
	Monitor  *core.Monitor
	Params   core.Params
	Profiles core.Profiles
	// Provider supplies VM boot delays; nil adds nodes instantly.
	Provider *iaas.Provider

	busy    bool
	nameSeq int
	// Reports accumulates one entry per completed actuation.
	Reports []core.ApplyReport
	// BusyWindows records each actuation's [start, end] on the virtual
	// clock (the observable reconfiguration windows of Figure 4).
	BusyWindows [][2]sim.Time
}

// NewSimActuator wires an actuator to the deployment.
func NewSimActuator(d *Deployment, mon *core.Monitor, params core.Params, profiles core.Profiles, prov *iaas.Provider) *SimActuator {
	return &SimActuator{D: d, Monitor: mon, Params: params, Profiles: profiles, Provider: prov}
}

// Busy reports whether an actuation plan is still unfolding.
func (a *SimActuator) Busy() bool { return a.busy }

// ProvisionNames implements core.Actuator.
func (a *SimActuator) ProvisionNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("rs-met-%03d", a.nameSeq+i)
	}
	return names
}

// Apply implements core.Actuator: it schedules the plan and returns
// immediately; the report reflects the *planned* actions.
func (a *SimActuator) Apply(target []placement.NodeState) (core.ApplyReport, error) {
	if a.busy {
		return core.ApplyReport{}, nil
	}
	a.busy = true
	a.BusyWindows = append(a.BusyWindows, [2]sim.Time{a.D.Sched.Now(), 0})
	var rep core.ApplyReport

	// Partition the plan.
	var toAdd []placement.NodeState
	var toReconfigure []placement.NodeState
	var toRemove []string
	for _, ns := range target {
		if _, ok := a.D.Model.Nodes[ns.Node]; !ok {
			toAdd = append(toAdd, ns)
			continue
		}
		if len(ns.Partitions) == 0 {
			toRemove = append(toRemove, ns.Node)
			continue
		}
		if !a.D.Model.Nodes[ns.Node].Config.Equal(a.Profiles[ns.Type]) {
			toReconfigure = append(toReconfigure, ns)
		}
	}
	sort.Slice(toReconfigure, func(i, j int) bool { return toReconfigure[i].Node < toReconfigure[j].Node })
	for _, ns := range toAdd {
		rep.NodesAdded = append(rep.NodesAdded, ns.Node)
		a.nameSeq++
	}
	for _, ns := range toReconfigure {
		rep.Reconfigured = append(rep.Reconfigured, ns.Node)
	}
	rep.NodesRemoved = append(rep.NodesRemoved, toRemove...)

	// Phase 1: boot new nodes, then reconfigure, then place, then
	// compact. Implemented as a chain of closures on the scheduler.
	pendingBoots := len(toAdd)
	var reconfigure func(i int)
	finish := func(now sim.Time) {
		moves := a.finalPlacement(target)
		rep.RegionMoves += moves
		compacts, bytes := a.compactLowLocality(target)
		rep.MajorCompacts = compacts
		rep.CompactedBytes = bytes
		a.removeEmpty(toRemove)
		a.Reports = append(a.Reports, rep)
		a.BusyWindows[len(a.BusyWindows)-1][1] = now
		a.busy = false
	}
	reconfigure = func(i int) {
		if i >= len(toReconfigure) {
			finish(a.D.Sched.Now())
			return
		}
		ns := toReconfigure[i]
		// Drain: move hosted regions to any online node (prefer the
		// region's target host) so data stays available.
		a.drain(ns.Node, target)
		rep.RegionMoves += 0 // drain moves counted inside drain via master-less model
		cfg := a.Profiles[ns.Type]
		nsType := ns.Type
		err := a.D.RestartNode(ns.Node, cfg, func(sim.Time) {
			a.Monitor.SetNodeType(ns.Node, nsType)
			reconfigure(i + 1)
		})
		if err != nil {
			// Node vanished mid-plan; skip it.
			reconfigure(i + 1)
		}
	}
	startReconfigs := func() { reconfigure(0) }

	if pendingBoots == 0 {
		startReconfigs()
	} else {
		for _, ns := range toAdd {
			ns := ns
			onReady := func() {
				a.D.AddNode(ns.Node, a.Profiles[ns.Type])
				a.Monitor.SetNodeType(ns.Node, ns.Type)
				pendingBoots--
				if pendingBoots == 0 {
					startReconfigs()
				}
			}
			if a.Provider == nil {
				onReady()
				continue
			}
			if _, err := a.Provider.Launch(ns.Node, "m1.medium", func(*iaas.Instance) { onReady() }); err != nil {
				// Quota or flavor trouble: degrade to instant add so the
				// plan still completes.
				onReady()
			}
		}
	}
	return rep, nil
}

// drain moves every region off node to its target host (or any online
// node) before a restart.
func (a *SimActuator) drain(node string, target []placement.NodeState) {
	targetHost := make(map[string]string)
	for _, ns := range target {
		for _, p := range ns.Partitions {
			targetHost[p] = ns.Node
		}
	}
	var hosted []string
	for r, host := range a.D.Model.Placement {
		if host == node {
			hosted = append(hosted, r)
		}
	}
	sort.Strings(hosted)
	for _, r := range hosted {
		dst := targetHost[r]
		if dst == node || dst == "" || !a.nodeOnline(dst) {
			dst = a.anyOnlineNode(node)
		}
		if dst != "" && dst != node {
			_ = a.D.MoveRegion(r, dst)
		}
	}
}

func (a *SimActuator) nodeOnline(name string) bool {
	n, ok := a.D.Model.Nodes[name]
	return ok && !n.Offline
}

// anyOnlineNode picks the online node (other than exclude) currently
// hosting the fewest regions, so drains spread instead of piling up.
func (a *SimActuator) anyOnlineNode(exclude string) string {
	counts := make(map[string]int)
	for _, host := range a.D.Model.Placement {
		counts[host]++
	}
	var names []string
	for n, node := range a.D.Model.Nodes {
		if n != exclude && !node.Offline {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	best := ""
	for _, n := range names {
		if best == "" || counts[n] < counts[best] {
			best = n
		}
	}
	return best
}

// finalPlacement moves every partition to its target node; returns the
// number of moves.
func (a *SimActuator) finalPlacement(target []placement.NodeState) int {
	moves := 0
	for _, ns := range target {
		if _, ok := a.D.Model.Nodes[ns.Node]; !ok {
			continue
		}
		for _, p := range ns.Partitions {
			if a.D.Model.Placement[p] != ns.Node {
				if a.D.MoveRegion(p, ns.Node) == nil {
					moves++
				}
			}
		}
	}
	return moves
}

// compactLowLocality issues major compactions for regions on nodes whose
// locality fell below the profile threshold (70% write / 90% others).
func (a *SimActuator) compactLowLocality(target []placement.NodeState) (int, int64) {
	compacts := 0
	var bytes int64
	for _, ns := range target {
		threshold := a.Params.LocalityReadThreshold
		if ns.Type == placement.Write {
			threshold = a.Params.LocalityWriteThreshold
		}
		for _, p := range ns.Partitions {
			reg, ok := a.D.Model.Regions[p]
			if !ok || a.D.Model.Placement[p] != ns.Node {
				continue
			}
			if !a.regionActive(p) {
				continue // nobody reads it; compaction would be waste
			}
			if reg.Locality < threshold {
				if a.D.MajorCompact(p, nil) == nil {
					compacts++
					bytes += int64(reg.SizeBytes)
				}
			}
		}
	}
	return compacts, bytes
}

// regionActive reports whether any active workload routes requests to
// the region.
func (a *SimActuator) regionActive(region string) bool {
	for _, w := range a.D.Model.Workloads {
		if w.Active && w.RegionShares[region] > 0 {
			return true
		}
	}
	return false
}

// removeEmpty drops nodes the target left without partitions.
func (a *SimActuator) removeEmpty(names []string) {
	for _, n := range names {
		stillHosting := false
		for _, host := range a.D.Model.Placement {
			if host == n {
				stillHosting = true
				break
			}
		}
		if !stillHosting {
			_ = a.D.RemoveNode(n)
		}
	}
}

// MeTRunner drives the full MeT control loop over a Deployment: Monitor
// polls every 30 s; after MinSamples the Decision Maker runs — unless an
// actuation is still unfolding, in which case sampling continues and the
// decision waits, as in the paper's evaluation.
type MeTRunner struct {
	Controller *core.DecisionMaker
	Monitor    *core.Monitor
	Actuator   *SimActuator
	Decisions  []core.Decision
}

// NewMeTRunner assembles MeT over a deployment with the paper's
// parameters and Table 1 profiles.
func NewMeTRunner(d *Deployment, params core.Params, prov *iaas.Provider) *MeTRunner {
	mon := core.NewMonitor(d, 0.5)
	profiles := core.Table1Profiles()
	act := NewSimActuator(d, mon, params, profiles, prov)
	return &MeTRunner{
		Controller: core.NewDecisionMaker(params, profiles),
		Monitor:    mon,
		Actuator:   act,
	}
}

// Start schedules the control loop from start until deadline.
func (m *MeTRunner) Start(sched *sim.Scheduler, start, deadline sim.Time) {
	sched.EachTick(start, 30*sim.Second, func(now sim.Time) bool {
		if now > deadline {
			return false
		}
		m.Tick(now)
		return true
	})
}

// Tick performs one monitoring sample and possibly one decision.
func (m *MeTRunner) Tick(now sim.Time) {
	m.Monitor.Poll(now)
	if m.Monitor.Samples() < m.Controller.Params.MinSamples || m.Actuator.Busy() {
		return
	}
	view := m.Monitor.View()
	names := m.Actuator.ProvisionNames(m.Controller.PendingGrowth())
	d := m.Controller.Decide(view, names)
	m.Decisions = append(m.Decisions, d)
	if d.Reconfigure {
		_, _ = m.Actuator.Apply(d.Target)
	}
	m.Monitor.Reset()
}
