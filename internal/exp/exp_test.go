package exp

import (
	"math"
	"strings"
	"testing"

	"met/internal/autoscale"
	"met/internal/core"
	"met/internal/placement"
	"met/internal/sim"
)

func TestStrategyString(t *testing.T) {
	for _, s := range []Strategy{RandomHomogeneous, ManualHomogeneous, ManualHeterogeneous, Strategy(9)} {
		if s.String() == "" {
			t.Fatal("empty strategy string")
		}
	}
}

func TestBuildYCSBScenarioShape(t *testing.T) {
	sc := BuildYCSBScenario(5, 1)
	if len(sc.Model.Nodes) != 5 {
		t.Fatalf("nodes = %d", len(sc.Model.Nodes))
	}
	// 21 regions: 4 each for A,B,C,E,F plus 1 for D.
	if len(sc.Model.Regions) != 21 {
		t.Fatalf("regions = %d", len(sc.Model.Regions))
	}
	if len(sc.Model.Workloads) != 6 {
		t.Fatalf("workloads = %d", len(sc.Model.Workloads))
	}
	// Shares per workload sum to 1, and the model validates once placed.
	sc.ApplyStrategy(RandomHomogeneous, sim.NewRNG(1))
	if err := sc.Model.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, w := range sc.Model.Workloads {
		var sum float64
		for _, s := range w.RegionShares {
			sum += s
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("workload %s shares sum to %v", w.Name, sum)
		}
	}
}

func TestApplyStrategiesPlaceEverything(t *testing.T) {
	for _, s := range []Strategy{RandomHomogeneous, ManualHomogeneous, ManualHeterogeneous} {
		sc := BuildYCSBScenario(5, 1)
		sc.ApplyStrategy(s, sim.NewRNG(7))
		if len(sc.Model.Placement) != len(sc.Model.Regions) {
			t.Fatalf("%v: placed %d of %d regions", s, len(sc.Model.Placement), len(sc.Model.Regions))
		}
		if err := sc.Model.Validate(); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
	}
}

func TestHeterogeneousUsesTable1Profiles(t *testing.T) {
	sc := BuildYCSBScenario(5, 1)
	sc.ApplyStrategy(ManualHeterogeneous, sim.NewRNG(1))
	configs := map[string]int{}
	for _, n := range sc.Model.Nodes {
		configs[n.Config.String()]++
	}
	if len(configs) < 3 {
		t.Fatalf("heterogeneous cluster has only %d distinct configs", len(configs))
	}
}

func TestDeploymentAccumulatesOps(t *testing.T) {
	sc := BuildYCSBScenario(5, 1)
	sc.ApplyStrategy(ManualHeterogeneous, sim.NewRNG(1))
	sched := sim.NewScheduler()
	d := NewDeployment(sched, sc.Model)
	d.Start(2 * sim.Minute)
	sched.RunUntil(2 * sim.Minute)
	if d.TotalOps() <= 0 {
		t.Fatal("no operations recorded")
	}
	if len(d.Series) == 0 {
		t.Fatal("no series samples")
	}
	last := d.Series[len(d.Series)-1]
	if last.Total <= 0 || last.Nodes != 5 {
		t.Fatalf("last sample = %+v", last)
	}
}

func TestDeploymentMoveRegionDegradesLocality(t *testing.T) {
	sc := BuildYCSBScenario(3, 1)
	sc.ApplyStrategy(RandomHomogeneous, sim.NewRNG(2))
	sched := sim.NewScheduler()
	d := NewDeployment(sched, sc.Model)
	var region, from string
	for r, n := range sc.Model.Placement {
		region, from = r, n
		break
	}
	var to string
	for n := range sc.Model.Nodes {
		if n != from {
			to = n
			break
		}
	}
	if err := d.MoveRegion(region, to); err != nil {
		t.Fatal(err)
	}
	if sc.Model.Placement[region] != to {
		t.Fatal("region not moved")
	}
	if loc := sc.Model.Regions[region].Locality; loc != d.MoveLocality {
		t.Fatalf("locality = %v, want %v", loc, d.MoveLocality)
	}
	// Errors on unknown region/node.
	if d.MoveRegion("ghost", to) == nil {
		t.Fatal("unknown region accepted")
	}
	if d.MoveRegion(region, "ghost") == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestDeploymentMajorCompactRestoresLocality(t *testing.T) {
	sc := BuildYCSBScenario(3, 1)
	sc.ApplyStrategy(RandomHomogeneous, sim.NewRNG(2))
	sched := sim.NewScheduler()
	d := NewDeployment(sched, sc.Model)
	var region string
	for r := range sc.Model.Placement {
		region = r
		break
	}
	sc.Model.Regions[region].Locality = 0.25
	host := sc.Model.Placement[region]
	done := false
	if err := d.MajorCompact(region, func(sim.Time) { done = true }); err != nil {
		t.Fatal(err)
	}
	if sc.Model.Nodes[host].BackgroundDiskBytesPerSec <= 0 {
		t.Fatal("no compaction disk load")
	}
	// 275 MB at ~1 GB/min: well within 1 minute.
	sched.RunUntil(2 * sim.Minute)
	if !done {
		t.Fatal("compaction never completed")
	}
	if sc.Model.Regions[region].Locality != 1 {
		t.Fatal("locality not restored")
	}
	if sc.Model.Nodes[host].BackgroundDiskBytesPerSec != 0 {
		t.Fatal("disk load not released")
	}
}

func TestDeploymentRestartNode(t *testing.T) {
	sc := BuildYCSBScenario(2, 1)
	sc.ApplyStrategy(RandomHomogeneous, sim.NewRNG(3))
	sched := sim.NewScheduler()
	d := NewDeployment(sched, sc.Model)
	cfg := core.Table1Profiles()[placement.Read]
	done := false
	if err := d.RestartNode("rs0", cfg, func(sim.Time) { done = true }); err != nil {
		t.Fatal(err)
	}
	if !sc.Model.Nodes["rs0"].Offline {
		t.Fatal("node not offline during restart")
	}
	sched.RunUntil(d.RestartDuration + sim.Second)
	if !done || sc.Model.Nodes["rs0"].Offline {
		t.Fatal("restart did not complete")
	}
	if !sc.Model.Nodes["rs0"].Config.Equal(cfg) {
		t.Fatal("config not applied")
	}
	if sc.Model.Nodes["rs0"].ColdFraction <= 0 {
		t.Fatal("cache not cold after restart")
	}
	// Warmup decays over time (ticks drive it).
	d.Start(5 * sim.Minute)
	sched.RunUntil(5 * sim.Minute)
	if sc.Model.Nodes["rs0"].ColdFraction != 0 {
		t.Fatal("cache never warmed")
	}
	if d.RestartNode("ghost", cfg, nil) == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestDeploymentRemoveNodeGuard(t *testing.T) {
	sc := BuildYCSBScenario(2, 1)
	sc.ApplyStrategy(RandomHomogeneous, sim.NewRNG(4))
	sched := sim.NewScheduler()
	d := NewDeployment(sched, sc.Model)
	if err := d.RemoveNode("rs0"); err == nil {
		t.Fatal("removed node still hosting regions")
	}
	// Move regions off, then removal succeeds.
	for r, host := range sc.Model.Placement {
		if host == "rs0" {
			if err := d.MoveRegion(r, "rs1"); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := d.RemoveNode("rs0"); err != nil {
		t.Fatal(err)
	}
	if _, ok := sc.Model.Nodes["rs0"]; ok {
		t.Fatal("node still present")
	}
}

func TestFig1ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r := RunFig1(5, 1)
	het := r.Summary[ManualHeterogeneous]["Total"].P50
	hom := r.Summary[ManualHomogeneous]["Total"].P50
	rndRaw := r.Raw[RandomHomogeneous]["Total"]
	var rndMean float64
	for _, v := range rndRaw {
		rndMean += v
	}
	rndMean /= float64(len(rndRaw))
	// Paper's headline shapes: heterogeneous beats the homogeneous
	// manual layout; the random mean sits below heterogeneous; the
	// scan workload benefits dramatically from its dedicated profile.
	if het <= hom {
		t.Errorf("Het p50 %.0f not above Manual-Hom p50 %.0f", het, hom)
	}
	if het <= rndMean {
		t.Errorf("Het p50 %.0f not above Random mean %.0f", het, rndMean)
	}
	eHet := r.Summary[ManualHeterogeneous]["E"].P50
	eHom := r.Summary[ManualHomogeneous]["E"].P50
	if eHet <= 1.5*eHom {
		t.Errorf("scan workload: het %.0f not well above hom %.0f", eHet, eHom)
	}
	// Random's run-to-run spread is wide (the paper's variance claim).
	spread := r.Summary[RandomHomogeneous]["Total"].P90 - r.Summary[RandomHomogeneous]["Total"].P5
	if spread < 0.15*rndMean {
		t.Errorf("random spread %.0f suspiciously narrow (mean %.0f)", spread, rndMean)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "Figure 1") {
		t.Fatal("print output malformed")
	}
}

func TestFig4Convergence(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := RunFig4(42)
	// MeT ends at Manual-Heterogeneous performance.
	var metTail, hetTail float64
	for i := 25; i < 30; i++ {
		metTail += at(r.MeT, i)
		hetTail += at(r.ManualHet, i)
	}
	if ratio := metTail / hetTail; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("final MeT/Het ratio = %.2f, want ~1.0", ratio)
	}
	// A visible reconfiguration dip, but never a collapse to zero.
	if r.MinDuringReconfig <= 1000 {
		t.Errorf("reconfiguration trough = %.0f, want > 1000", r.MinDuringReconfig)
	}
	if r.MinDuringReconfig >= metTail/5*0.9 {
		t.Errorf("no visible dip: trough %.0f vs steady %.0f", r.MinDuringReconfig, metTail/5)
	}
	// Window within the run and a few minutes long.
	if r.ReconfigEnd <= r.ReconfigStart || r.ReconfigEnd > 30*sim.Minute {
		t.Errorf("window [%v, %v] malformed", r.ReconfigStart, r.ReconfigEnd)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "Figure 4") {
		t.Fatal("print output malformed")
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := RunTable2(7)
	if r.MeTNoReconfig <= r.ManualHomogeneous {
		t.Errorf("MeT config %.0f not above baseline %.0f", r.MeTNoReconfig, r.ManualHomogeneous)
	}
	if r.MeTWithReconfig <= r.ManualHomogeneous {
		t.Errorf("MeT with overhead %.0f not above baseline %.0f", r.MeTWithReconfig, r.ManualHomogeneous)
	}
	if r.MeTWithReconfig >= r.MeTNoReconfig {
		t.Errorf("reconfig overhead missing: %.0f vs %.0f", r.MeTWithReconfig, r.MeTNoReconfig)
	}
	// Overhead modest (paper: 8%).
	overhead := 1 - r.MeTWithReconfig/r.MeTNoReconfig
	if overhead > 0.25 {
		t.Errorf("overhead = %.0f%%, want modest", overhead*100)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "Table 2") {
		t.Fatal("print output malformed")
	}
}

func TestElasticityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := RunElasticity(11)
	p1 := int(r.Phase1End/sim.Minute) - 1
	met := r.MeT.CumulativeOps[p1]
	tira := r.Tiramola.CumulativeOps[p1]
	if met <= tira {
		t.Errorf("MeT cumulative %.0f not above Tiramola %.0f", met, tira)
	}
	// Both systems grow the cluster during overload.
	if r.MeT.PeakNodes <= 6 {
		t.Errorf("MeT never scaled up (peak %d)", r.MeT.PeakNodes)
	}
	if r.Tiramola.PeakNodes <= 6 {
		t.Errorf("Tiramola never scaled up (peak %d)", r.Tiramola.PeakNodes)
	}
	// MeT sheds capacity in phase 2; Tiramola cannot while any node is
	// busy (the paper's central asymmetry).
	if r.MeT.FinalNodes >= r.MeT.PeakNodes {
		t.Errorf("MeT never scaled down (peak %d, final %d)", r.MeT.PeakNodes, r.MeT.FinalNodes)
	}
	if r.Tiramola.FinalNodes < r.Tiramola.PeakNodes {
		t.Errorf("Tiramola scaled down unexpectedly (peak %d, final %d)", r.Tiramola.PeakNodes, r.Tiramola.FinalNodes)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "Figure 5") || !strings.Contains(sb.String(), "Figure 6") {
		t.Fatal("print output malformed")
	}
}

func TestMeTRunnerReconfiguresDeployment(t *testing.T) {
	sc := BuildYCSBScenario(5, 1)
	sc.ApplyStrategy(RandomHomogeneous, sim.NewRNG(5))
	sched := sim.NewScheduler()
	d := NewDeployment(sched, sc.Model)
	d.RampUp = sim.Minute
	params := core.DefaultParams()
	params.MinNodes = 5
	params.MaxNodes = 5
	runner := NewMeTRunner(d, params, nil)
	seedTypes(runner, sc)
	d.Start(15 * sim.Minute)
	runner.Start(sched, sim.Minute, 15*sim.Minute)
	sched.RunUntil(15 * sim.Minute)
	if len(runner.Decisions) == 0 {
		t.Fatal("no decisions")
	}
	if len(runner.Actuator.Reports) == 0 {
		t.Fatal("no completed actuations")
	}
	configs := map[string]bool{}
	for _, n := range sc.Model.Nodes {
		configs[n.Config.String()] = true
	}
	if len(configs) < 2 {
		t.Fatal("cluster still homogeneous after MeT")
	}
}

func TestSimActuatorBusyGate(t *testing.T) {
	sc := BuildYCSBScenario(3, 1)
	sc.ApplyStrategy(RandomHomogeneous, sim.NewRNG(6))
	sched := sim.NewScheduler()
	d := NewDeployment(sched, sc.Model)
	mon := core.NewMonitor(d, 0.5)
	act := NewSimActuator(d, mon, core.DefaultParams(), core.Table1Profiles(), nil)
	// A target that re-types every node, forcing restarts.
	ns := simpleTarget(sc)
	if _, err := act.Apply(ns); err != nil {
		t.Fatal(err)
	}
	if !act.Busy() {
		t.Fatal("actuator not busy mid-plan")
	}
	// A second Apply while busy is a no-op.
	if _, err := act.Apply(ns); err != nil {
		t.Fatal(err)
	}
	if len(act.BusyWindows) != 1 {
		t.Fatalf("busy windows = %d", len(act.BusyWindows))
	}
	sched.RunUntil(10 * sim.Minute)
	if act.Busy() {
		t.Fatal("actuator stuck busy")
	}
	if len(act.Reports) != 1 {
		t.Fatalf("reports = %d", len(act.Reports))
	}
}

// simpleTarget builds a target that re-types every node.
func simpleTarget(sc *Scenario) []placement.NodeState {
	var out []placement.NodeState
	byNode := map[string][]string{}
	for r, n := range sc.Model.Placement {
		byNode[n] = append(byNode[n], r)
	}
	i := 0
	for _, n := range sc.NodeNames() {
		out = append(out, placement.NodeState{Node: n, Type: placement.AccessTypes[i%4], Partitions: byNode[n]})
		i++
	}
	return out
}

func TestTiramolaRunnerAddsUnderLoad(t *testing.T) {
	sc := BuildYCSBScenario(4, 2.5)
	sc.ApplyStrategy(RandomHomogeneous, sim.NewRNG(8))
	sched := sim.NewScheduler()
	d := NewDeployment(sched, sc.Model)
	d.RampUp = sim.Minute
	params := autoscale.DefaultParams()
	params.CPUHigh = 0.7
	params.CooldownEvaluations = 2
	runner := NewTiramolaRunner(d, params, nil, sim.NewRNG(9))
	d.Start(20 * sim.Minute)
	runner.Start(sched, sim.Minute, 20*sim.Minute)
	sched.RunUntil(20 * sim.Minute)
	if len(runner.Adds) == 0 {
		t.Fatal("tiramola never added a node under overload")
	}
	if len(d.Model.Nodes) <= 4 {
		t.Fatalf("cluster did not grow: %d nodes", len(d.Model.Nodes))
	}
	// Random rebalancing destroyed locality somewhere.
	degraded := false
	for _, r := range d.Model.Regions {
		if r.Locality < 1 {
			degraded = true
		}
	}
	if !degraded {
		t.Fatal("rebalance never degraded locality")
	}
}
