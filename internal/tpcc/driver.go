package tpcc

import (
	"met/internal/sim"
)

// Result accumulates transaction outcomes. TpmC is derived from the
// NewOrder count and the measured (virtual or operation-logical) window.
type Result struct {
	Completed map[TxType]int64
	Errors    int64
}

// Total returns all completed transactions.
func (r Result) Total() int64 {
	var sum int64
	for _, v := range r.Completed {
		sum += v
	}
	return sum
}

// NewOrders returns the number of completed NewOrder transactions — the
// numerator of tpmC.
func (r Result) NewOrders() int64 { return r.Completed[TxNewOrder] }

// TpmC converts a NewOrder count over a window into transactions/minute.
func TpmC(newOrders int64, window sim.Time) float64 {
	if window <= 0 {
		return 0
	}
	return float64(newOrders) / window.Minutes()
}

// Driver executes a transaction stream against the functional cluster.
type Driver struct {
	Exec *Executor
	res  Result
}

// NewDriver wraps an executor.
func NewDriver(e *Executor) *Driver {
	return &Driver{Exec: e, res: Result{Completed: make(map[TxType]int64)}}
}

// Step runs one transaction from the standard mix.
func (d *Driver) Step() error {
	t := d.Exec.PickTx()
	if err := d.Exec.Execute(t); err != nil {
		d.res.Errors++
		return err
	}
	d.res.Completed[t]++
	return nil
}

// Run executes n transactions, stopping on the first hard error.
func (d *Driver) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := d.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Result returns a copy of the accumulated outcome counters.
func (d *Driver) Result() Result {
	out := Result{Completed: make(map[TxType]int64, len(d.res.Completed)), Errors: d.res.Errors}
	for k, v := range d.res.Completed {
		out.Completed[k] = v
	}
	return out
}

// ReadOnlyFraction returns the fraction of completed transactions that
// are read-only (OrderStatus + StockLevel); the paper quotes the default
// traffic as 8% read-only, 92% update.
func (r Result) ReadOnlyFraction() float64 {
	total := r.Total()
	if total == 0 {
		return 0
	}
	ro := r.Completed[TxOrderStatus] + r.Completed[TxStockLevel]
	return float64(ro) / float64(total)
}
