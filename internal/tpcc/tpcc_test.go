package tpcc

import (
	"fmt"
	"math"
	"strconv"
	"testing"

	"met/internal/hbase"
	"met/internal/hdfs"
	"met/internal/sim"
)

func newLoadedCluster(t *testing.T, cfg Config, servers int) (*hbase.Master, *hbase.Client, *Loader) {
	t.Helper()
	m := hbase.NewMaster(hdfs.NewNamenode(2))
	for i := 0; i < servers; i++ {
		if _, err := m.AddServer(fmt.Sprintf("rs%d", i), hbase.DefaultServerConfig()); err != nil {
			t.Fatal(err)
		}
	}
	c := hbase.NewClient(m)
	l := &Loader{Cfg: cfg, Client: c}
	if err := l.CreateTables(m, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load(); err != nil {
		t.Fatal(err)
	}
	return m, c, l
}

func TestConfigValidate(t *testing.T) {
	if err := Standard().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Small().Validate(); err != nil {
		t.Fatal(err)
	}
	if (Config{}).Validate() == nil {
		t.Fatal("zero config accepted")
	}
}

func TestStandardMatchesPaper(t *testing.T) {
	cfg := Standard()
	if cfg.Warehouses != 30 {
		t.Fatalf("warehouses = %d, want 30 per Section 6.3", cfg.Warehouses)
	}
	if cfg.DistrictsPerWH != 10 || cfg.CustomersPerDistrict != 3000 || cfg.Items != 100_000 {
		t.Fatalf("standard sizes wrong: %+v", cfg)
	}
}

func TestKeyEncodingsOrdered(t *testing.T) {
	// Warehouse prefixes must sort numerically so prefix splits work.
	if WarehousePrefix(2) >= WarehousePrefix(10) {
		t.Fatal("warehouse prefixes not ordered")
	}
	if OrderKey(1, 1, 5) >= OrderKey(1, 1, 40) {
		t.Fatal("order keys not ordered")
	}
	if OrderLineKey(1, 1, 5, 1) >= OrderLineKey(1, 1, 5, 12) {
		t.Fatal("order line keys not ordered")
	}
	// Scoping: all of warehouse 1's district keys share its prefix.
	if got := DistrictKey(1, 3); got[:6] != WarehousePrefix(1) {
		t.Fatalf("district key %q not warehouse-prefixed", got)
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	fields := map[string]string{"A": "1", "B": "x=y", "C_BALANCE": "-10.55"}
	// Note: values containing '=' survive because we split on the first '='.
	enc := encodeRow(map[string]string{"A": "1", "C_BALANCE": "-10.55"}, 8)
	dec := decodeRow(enc)
	if dec["A"] != "1" || dec["C_BALANCE"] != "-10.55" {
		t.Fatalf("round trip = %v", dec)
	}
	if fieldFloat(dec, "C_BALANCE") != -10.55 {
		t.Fatalf("fieldFloat = %v", fieldFloat(dec, "C_BALANCE"))
	}
	if fieldInt(map[string]string{"N": "42"}, "N") != 42 {
		t.Fatal("fieldInt failed")
	}
	if fieldInt(dec, "MISSING") != 0 || fieldFloat(dec, "MISSING") != 0 {
		t.Fatal("missing fields should be zero")
	}
	_ = fields
	// Empty row decodes to empty map.
	if len(decodeRow([]byte("#xxxx"))) != 0 {
		t.Fatal("filler-only row not empty")
	}
}

func TestNURandRange(t *testing.T) {
	r := sim.NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := NURand(r, 1023, 1, 3000)
		if v < 1 || v > 3000 {
			t.Fatalf("NURand out of range: %d", v)
		}
	}
}

func TestLoaderPopulates(t *testing.T) {
	cfg := Small()
	_, c, _ := newLoadedCluster(t, cfg, 2)
	// Spot-check each table.
	if _, err := c.Get(TableWarehouse, WarehouseKey(1)); err != nil {
		t.Fatalf("warehouse missing: %v", err)
	}
	if _, err := c.Get(TableDistrict, DistrictKey(2, 2)); err != nil {
		t.Fatalf("district missing: %v", err)
	}
	if _, err := c.Get(TableCustomer, CustomerKey(1, 1, cfg.CustomersPerDistrict)); err != nil {
		t.Fatalf("customer missing: %v", err)
	}
	if _, err := c.Get(TableItem, ItemKey(cfg.Items)); err != nil {
		t.Fatalf("item missing: %v", err)
	}
	if _, err := c.Get(TableStock, StockKey(2, 1)); err != nil {
		t.Fatalf("stock missing: %v", err)
	}
	if _, err := c.Get(TableOrder, OrderKey(1, 1, 1)); err != nil {
		t.Fatalf("order missing: %v", err)
	}
}

func TestLoaderRowCount(t *testing.T) {
	cfg := Small()
	m := hbase.NewMaster(hdfs.NewNamenode(1))
	m.AddServer("rs0", hbase.DefaultServerConfig())
	c := hbase.NewClient(m)
	l := &Loader{Cfg: cfg, Client: c}
	if err := l.CreateTables(m, 1); err != nil {
		t.Fatal(err)
	}
	rows, err := l.Load()
	if err != nil {
		t.Fatal(err)
	}
	// items + per-wh (1 + stock + per-district(1 + customers + orders + lines + neworders))
	perDistNO := cfg.InitialOrdersPerDist - cfg.InitialOrdersPerDist*2/3
	want := int64(cfg.Items)
	want += int64(cfg.Warehouses) * int64(1+cfg.Items)
	want += int64(cfg.Warehouses*cfg.DistrictsPerWH) * int64(1+cfg.CustomersPerDistrict+2*cfg.InitialOrdersPerDist+perDistNO)
	if rows != want {
		t.Fatalf("rows = %d, want %d", rows, want)
	}
}

func TestNewOrderIncrementsOID(t *testing.T) {
	cfg := Small()
	_, c, _ := newLoadedCluster(t, cfg, 1)
	e := NewExecutor(cfg, c, sim.NewRNG(2))
	before, _ := e.getRow(TableDistrict, DistrictKey(1, 1))
	startOID := fieldInt(before, "D_NEXT_O_ID")
	for i := 0; i < 5; i++ {
		if err := e.NewOrder(1); err != nil {
			t.Fatal(err)
		}
	}
	// At least one of the districts advanced; check both.
	advanced := 0
	for d := 1; d <= cfg.DistrictsPerWH; d++ {
		row, _ := e.getRow(TableDistrict, DistrictKey(1, d))
		if fieldInt(row, "D_NEXT_O_ID") > startOID {
			advanced++
		}
	}
	if advanced == 0 {
		t.Fatal("no district order counter advanced")
	}
}

func TestNewOrderWritesLines(t *testing.T) {
	cfg := Small()
	_, c, _ := newLoadedCluster(t, cfg, 1)
	e := NewExecutor(cfg, c, sim.NewRNG(3))
	if err := e.NewOrder(1); err != nil {
		t.Fatal(err)
	}
	// Find the new order (oid = initial next oid) in some district.
	oid := cfg.InitialOrdersPerDist + 1
	found := false
	for d := 1; d <= cfg.DistrictsPerWH; d++ {
		if _, err := e.getRow(TableOrder, OrderKey(1, d, oid)); err == nil {
			lines, err := c.Scan(TableOrderLine, OrderLineKey(1, d, oid, 1), "", -1)
			if err != nil || len(lines) < 5 {
				t.Fatalf("order lines = %d, %v", len(lines), err)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("new order row not found")
	}
}

func TestPaymentUpdatesBalances(t *testing.T) {
	cfg := Small()
	_, c, _ := newLoadedCluster(t, cfg, 1)
	e := NewExecutor(cfg, c, sim.NewRNG(4))
	before, _ := e.getRow(TableWarehouse, WarehouseKey(1))
	ytdBefore := fieldFloat(before, "W_YTD")
	if err := e.Payment(1); err != nil {
		t.Fatal(err)
	}
	after, _ := e.getRow(TableWarehouse, WarehouseKey(1))
	if fieldFloat(after, "W_YTD") <= ytdBefore {
		t.Fatalf("W_YTD not increased: %v -> %v", ytdBefore, fieldFloat(after, "W_YTD"))
	}
	// A history row exists.
	entries, err := c.Scan(TableHistory, "", "", -1)
	if err != nil || len(entries) == 0 {
		t.Fatalf("history rows = %d, %v", len(entries), err)
	}
}

func TestOrderStatusReadsWithoutWrites(t *testing.T) {
	cfg := Small()
	m, c, _ := newLoadedCluster(t, cfg, 1)
	e := NewExecutor(cfg, c, sim.NewRNG(5))
	rs, _ := m.Server("rs0")
	writesBefore := rs.Requests().Writes
	if err := e.OrderStatus(1); err != nil {
		t.Fatal(err)
	}
	if rs.Requests().Writes != writesBefore {
		t.Fatal("OrderStatus wrote rows")
	}
}

func TestDeliveryConsumesNewOrders(t *testing.T) {
	cfg := Small()
	_, c, _ := newLoadedCluster(t, cfg, 1)
	e := NewExecutor(cfg, c, sim.NewRNG(6))
	before, _ := c.Scan(TableNewOrder, "", "", -1)
	if len(before) == 0 {
		t.Fatal("no initial new orders loaded")
	}
	if err := e.Delivery(1); err != nil {
		t.Fatal(err)
	}
	after, _ := c.Scan(TableNewOrder, "", "", -1)
	if len(after) >= len(before) {
		t.Fatalf("new orders not consumed: %d -> %d", len(before), len(after))
	}
	// The delivered order got a carrier id.
	no := decodeRow(before[0].Value)
	oid := fieldInt(no, "NO_O_ID")
	order, err := e.getRow(TableOrder, OrderKey(1, 1, oid))
	if err == nil && fieldInt(order, "O_CARRIER_ID") == 0 {
		t.Fatal("delivered order has no carrier")
	}
}

func TestStockLevelRuns(t *testing.T) {
	cfg := Small()
	_, c, _ := newLoadedCluster(t, cfg, 1)
	e := NewExecutor(cfg, c, sim.NewRNG(7))
	if err := e.StockLevel(1); err != nil {
		t.Fatal(err)
	}
}

func TestDriverMixAndTpmC(t *testing.T) {
	cfg := Small()
	_, c, _ := newLoadedCluster(t, cfg, 2)
	e := NewExecutor(cfg, c, sim.NewRNG(8))
	d := NewDriver(e)
	const n = 400
	if err := d.Run(n); err != nil {
		t.Fatal(err)
	}
	res := d.Result()
	if res.Total() != n {
		t.Fatalf("total = %d", res.Total())
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	// Mix approximates the standard proportions.
	noFrac := float64(res.NewOrders()) / n
	if math.Abs(noFrac-0.45) > 0.1 {
		t.Fatalf("NewOrder fraction = %v", noFrac)
	}
	ro := res.ReadOnlyFraction()
	if ro < 0.02 || ro > 0.2 {
		t.Fatalf("read-only fraction = %v, expected near 0.08", ro)
	}
	// tpmC arithmetic.
	if got := TpmC(100, 10*sim.Minute); got != 10 {
		t.Fatalf("TpmC = %v", got)
	}
	if TpmC(100, 0) != 0 {
		t.Fatal("TpmC with zero window")
	}
}

func TestPickTxCoversAllTypes(t *testing.T) {
	e := &Executor{RNG: sim.NewRNG(9), Cfg: Small()}
	counts := map[TxType]int{}
	for i := 0; i < 20000; i++ {
		counts[e.PickTx()]++
	}
	for tx, p := range StandardMix {
		frac := float64(counts[tx]) / 20000
		if math.Abs(frac-p) > 0.02 {
			t.Errorf("%v fraction = %v, want %v", tx, frac, p)
		}
	}
}

func TestTxTypeString(t *testing.T) {
	for tx := range StandardMix {
		if tx.String() == "" {
			t.Fatal("empty tx string")
		}
	}
	if TxType(42).String() == "" {
		t.Fatal("unknown tx string empty")
	}
}

func TestExecuteUnknownTx(t *testing.T) {
	cfg := Small()
	_, c, _ := newLoadedCluster(t, cfg, 1)
	e := NewExecutor(cfg, c, sim.NewRNG(10))
	if err := e.Execute(TxType(42)); err == nil {
		t.Fatal("unknown tx accepted")
	}
}

func TestWarehousePartitioning(t *testing.T) {
	// With warehousesPerRegion=1 and 2 warehouses, warehouse tables get
	// 2 regions each.
	cfg := Small()
	m, _, _ := newLoadedCluster(t, cfg, 2)
	tbl, err := m.Table(TableStock)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRegions() != 2 {
		t.Fatalf("stock regions = %d, want 2", tbl.NumRegions())
	}
	itemTbl, _ := m.Table(TableItem)
	if itemTbl.NumRegions() != 1 {
		t.Fatalf("item regions = %d, want 1", itemTbl.NumRegions())
	}
	// Rows route by warehouse: stock of wh1 and wh2 in different regions.
	r1 := tbl.RegionFor(StockKey(1, 1))
	r2 := tbl.RegionFor(StockKey(2, 1))
	if r1 == r2 {
		t.Fatal("warehouses share a region")
	}
}

func TestConcurrentOIDCacheMonotonic(t *testing.T) {
	// The executor's OID cache prevents reusing an order id even if the
	// stored row lags (record-level atomicity caveat).
	cfg := Small()
	_, c, _ := newLoadedCluster(t, cfg, 1)
	e := NewExecutor(cfg, c, sim.NewRNG(11))
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		oid, err := e.nextOrderID(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		key := strconv.Itoa(oid)
		if seen[key] {
			t.Fatalf("order id %d reused", oid)
		}
		seen[key] = true
	}
}
