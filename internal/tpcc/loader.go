package tpcc

import (
	"fmt"
	"strconv"

	"met/internal/hbase"
)

// Loader populates a cluster with the TPC-C dataset.
type Loader struct {
	Cfg    Config
	Client *hbase.Client
}

// CreateTables creates the nine tables, pre-split by warehouse so each
// region server can own an integral number of warehouses (the paper runs
// 5 warehouses per region server on a 6-server cluster).
func (l *Loader) CreateTables(m *hbase.Master, warehousesPerRegion int) error {
	if err := l.Cfg.Validate(); err != nil {
		return err
	}
	if warehousesPerRegion < 1 {
		warehousesPerRegion = 1
	}
	var splits []string
	for w := warehousesPerRegion + 1; w <= l.Cfg.Warehouses; w += warehousesPerRegion {
		splits = append(splits, WarehousePrefix(w))
	}
	for _, t := range Tables {
		s := splits
		if t == TableItem {
			s = nil // items are not warehouse-scoped
		}
		if _, err := m.CreateTable(t, s); err != nil {
			return fmt.Errorf("tpcc: create %s: %w", t, err)
		}
	}
	return nil
}

// Load inserts the initial population. It returns the number of rows
// written.
func (l *Loader) Load() (int64, error) {
	if err := l.Cfg.Validate(); err != nil {
		return 0, err
	}
	var rows int64
	put := func(table, key string, fields map[string]string) error {
		rows++
		return l.Client.Put(table, key, encodeRow(fields, l.Cfg.ValueFiller))
	}
	// Items (global).
	for i := 1; i <= l.Cfg.Items; i++ {
		if err := put(TableItem, ItemKey(i), map[string]string{
			"I_ID":    strconv.Itoa(i),
			"I_NAME":  fmt.Sprintf("item-%d", i),
			"I_PRICE": "9.99",
		}); err != nil {
			return rows, err
		}
	}
	for w := 1; w <= l.Cfg.Warehouses; w++ {
		if err := put(TableWarehouse, WarehouseKey(w), map[string]string{
			"W_ID":   strconv.Itoa(w),
			"W_YTD":  "300000.00",
			"W_NAME": fmt.Sprintf("wh-%d", w),
			"W_TAX":  "0.07",
		}); err != nil {
			return rows, err
		}
		// Stock for every item at this warehouse.
		for i := 1; i <= l.Cfg.Items; i++ {
			if err := put(TableStock, StockKey(w, i), map[string]string{
				"S_QUANTITY":   "50",
				"S_YTD":        "0",
				"S_ORDER_CNT":  "0",
				"S_REMOTE_CNT": "0",
			}); err != nil {
				return rows, err
			}
		}
		for d := 1; d <= l.Cfg.DistrictsPerWH; d++ {
			nextOID := l.Cfg.InitialOrdersPerDist + 1
			if err := put(TableDistrict, DistrictKey(w, d), map[string]string{
				"D_ID":        strconv.Itoa(d),
				"D_W_ID":      strconv.Itoa(w),
				"D_YTD":       "30000.00",
				"D_TAX":       "0.05",
				"D_NEXT_O_ID": strconv.Itoa(nextOID),
			}); err != nil {
				return rows, err
			}
			for c := 1; c <= l.Cfg.CustomersPerDistrict; c++ {
				if err := put(TableCustomer, CustomerKey(w, d, c), map[string]string{
					"C_ID":           strconv.Itoa(c),
					"C_BALANCE":      "-10.00",
					"C_YTD_PAYMENT":  "10.00",
					"C_PAYMENT_CNT":  "1",
					"C_DELIVERY_CNT": "0",
					"C_LAST":         fmt.Sprintf("LAST%d", c%1000),
				}); err != nil {
					return rows, err
				}
			}
			// Initial orders with one line each (kept minimal; the
			// benchmark grows the order tables as it runs).
			for o := 1; o <= l.Cfg.InitialOrdersPerDist; o++ {
				cid := (o % l.Cfg.CustomersPerDistrict) + 1
				if err := put(TableOrder, OrderKey(w, d, o), map[string]string{
					"O_ID":         strconv.Itoa(o),
					"O_C_ID":       strconv.Itoa(cid),
					"O_OL_CNT":     "1",
					"O_CARRIER_ID": "0",
				}); err != nil {
					return rows, err
				}
				if err := put(TableOrderLine, OrderLineKey(w, d, o, 1), map[string]string{
					"OL_I_ID":     strconv.Itoa((o % l.Cfg.Items) + 1),
					"OL_AMOUNT":   "9.99",
					"OL_QUANTITY": "5",
				}); err != nil {
					return rows, err
				}
				// The last third of initial orders are undelivered.
				if o > l.Cfg.InitialOrdersPerDist*2/3 {
					if err := put(TableNewOrder, NewOrderKey(w, d, o), map[string]string{
						"NO_O_ID": strconv.Itoa(o),
					}); err != nil {
						return rows, err
					}
				}
			}
		}
	}
	return rows, nil
}
