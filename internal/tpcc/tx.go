package tpcc

import (
	"errors"
	"fmt"
	"strconv"

	"met/internal/hbase"
	"met/internal/sim"
)

// TxType identifies a TPC-C transaction.
type TxType int

// The five TPC-C transactions.
const (
	TxNewOrder TxType = iota
	TxPayment
	TxOrderStatus
	TxDelivery
	TxStockLevel
)

// String implements fmt.Stringer.
func (t TxType) String() string {
	switch t {
	case TxNewOrder:
		return "new_order"
	case TxPayment:
		return "payment"
	case TxOrderStatus:
		return "order_status"
	case TxDelivery:
		return "delivery"
	case TxStockLevel:
		return "stock_level"
	default:
		return fmt.Sprintf("TxType(%d)", int(t))
	}
}

// StandardMix is the TPC-C transaction mix: 45% NewOrder, 43% Payment,
// 4% each of OrderStatus, Delivery and StockLevel — the paper's "8%
// read-only and 92% update transactions".
var StandardMix = map[TxType]float64{
	TxNewOrder:    0.45,
	TxPayment:     0.43,
	TxOrderStatus: 0.04,
	TxDelivery:    0.04,
	TxStockLevel:  0.04,
}

// Executor runs TPC-C transactions against the functional cluster.
type Executor struct {
	Cfg    Config
	Client *hbase.Client
	RNG    *sim.RNG

	districtNextOID map[string]int // cached D_NEXT_O_ID per district key
	historySeq      int
}

// NewExecutor returns an executor over the loaded database.
func NewExecutor(cfg Config, c *hbase.Client, rng *sim.RNG) *Executor {
	return &Executor{Cfg: cfg, Client: c, RNG: rng, districtNextOID: make(map[string]int)}
}

// PickTx draws a transaction type from the standard mix.
func (e *Executor) PickTx() TxType {
	x := e.RNG.Float64()
	for _, t := range []TxType{TxNewOrder, TxPayment, TxOrderStatus, TxDelivery, TxStockLevel} {
		p := StandardMix[t]
		if x < p {
			return t
		}
		x -= p
	}
	return TxNewOrder
}

// Execute runs one transaction of the given type on a random warehouse.
func (e *Executor) Execute(t TxType) error {
	w := 1 + e.RNG.Intn(e.Cfg.Warehouses)
	switch t {
	case TxNewOrder:
		return e.NewOrder(w)
	case TxPayment:
		return e.Payment(w)
	case TxOrderStatus:
		return e.OrderStatus(w)
	case TxDelivery:
		return e.Delivery(w)
	case TxStockLevel:
		return e.StockLevel(w)
	default:
		return fmt.Errorf("tpcc: unknown transaction %v", t)
	}
}

// getRow fetches and decodes one row.
func (e *Executor) getRow(table, key string) (map[string]string, error) {
	v, err := e.Client.Get(table, key)
	if err != nil {
		return nil, err
	}
	return decodeRow(v), nil
}

// putRow encodes and writes one row.
func (e *Executor) putRow(table, key string, fields map[string]string) error {
	return e.Client.Put(table, key, encodeRow(fields, e.Cfg.ValueFiller))
}

// nextOrderID reads-and-increments the district's D_NEXT_O_ID.
func (e *Executor) nextOrderID(w, d int) (int, error) {
	key := DistrictKey(w, d)
	dist, err := e.getRow(TableDistrict, key)
	if err != nil {
		return 0, err
	}
	oid := fieldInt(dist, "D_NEXT_O_ID")
	if cached, ok := e.districtNextOID[key]; ok && cached > oid {
		oid = cached // record-level atomicity: the cache papers over lost updates
	}
	dist["D_NEXT_O_ID"] = strconv.Itoa(oid + 1)
	if err := e.putRow(TableDistrict, key, dist); err != nil {
		return 0, err
	}
	e.districtNextOID[key] = oid + 1
	return oid, nil
}

// NewOrder is the tpmC transaction: read warehouse/district/customer,
// allocate an order id, insert order + new-order rows, and for 5–15
// items read the item, update its stock, and insert an order line.
func (e *Executor) NewOrder(w int) error {
	d := 1 + e.RNG.Intn(e.Cfg.DistrictsPerWH)
	c := NURand(e.RNG, 1023, 1, e.Cfg.CustomersPerDistrict)

	if _, err := e.getRow(TableWarehouse, WarehouseKey(w)); err != nil {
		return err
	}
	if _, err := e.getRow(TableCustomer, CustomerKey(w, d, c)); err != nil {
		return err
	}
	oid, err := e.nextOrderID(w, d)
	if err != nil {
		return err
	}
	numItems := 5 + e.RNG.Intn(11)
	if err := e.putRow(TableOrder, OrderKey(w, d, oid), map[string]string{
		"O_ID": strconv.Itoa(oid), "O_C_ID": strconv.Itoa(c),
		"O_OL_CNT": strconv.Itoa(numItems), "O_CARRIER_ID": "0",
	}); err != nil {
		return err
	}
	if err := e.putRow(TableNewOrder, NewOrderKey(w, d, oid), map[string]string{
		"NO_O_ID": strconv.Itoa(oid),
	}); err != nil {
		return err
	}
	for l := 1; l <= numItems; l++ {
		item := NURand(e.RNG, 8191, 1, e.Cfg.Items)
		// 1% of lines hit a remote warehouse (TPC-C's distributed flavor).
		supplyW := w
		if e.Cfg.Warehouses > 1 && e.RNG.Float64() < 0.01 {
			supplyW = 1 + e.RNG.Intn(e.Cfg.Warehouses)
		}
		itemRow, err := e.getRow(TableItem, ItemKey(item))
		if err != nil {
			return err
		}
		stockKey := StockKey(supplyW, item)
		stock, err := e.getRow(TableStock, stockKey)
		if err != nil {
			return err
		}
		qty := fieldInt(stock, "S_QUANTITY")
		orderQty := 1 + e.RNG.Intn(10)
		if qty-orderQty >= 10 {
			qty -= orderQty
		} else {
			qty = qty - orderQty + 91
		}
		stock["S_QUANTITY"] = strconv.Itoa(qty)
		stock["S_YTD"] = strconv.Itoa(fieldInt(stock, "S_YTD") + orderQty)
		stock["S_ORDER_CNT"] = strconv.Itoa(fieldInt(stock, "S_ORDER_CNT") + 1)
		if supplyW != w {
			stock["S_REMOTE_CNT"] = strconv.Itoa(fieldInt(stock, "S_REMOTE_CNT") + 1)
		}
		if err := e.putRow(TableStock, stockKey, stock); err != nil {
			return err
		}
		amount := float64(orderQty) * fieldFloat(itemRow, "I_PRICE")
		if err := e.putRow(TableOrderLine, OrderLineKey(w, d, oid, l), map[string]string{
			"OL_I_ID":     strconv.Itoa(item),
			"OL_SUPPLY_W": strconv.Itoa(supplyW),
			"OL_QUANTITY": strconv.Itoa(orderQty),
			"OL_AMOUNT":   strconv.FormatFloat(amount, 'f', 2, 64),
		}); err != nil {
			return err
		}
	}
	return nil
}

// Payment updates warehouse and district YTD, the customer's balance,
// and inserts a history row.
func (e *Executor) Payment(w int) error {
	d := 1 + e.RNG.Intn(e.Cfg.DistrictsPerWH)
	c := NURand(e.RNG, 1023, 1, e.Cfg.CustomersPerDistrict)
	amount := 1 + e.RNG.Float64()*4999

	wh, err := e.getRow(TableWarehouse, WarehouseKey(w))
	if err != nil {
		return err
	}
	wh["W_YTD"] = strconv.FormatFloat(fieldFloat(wh, "W_YTD")+amount, 'f', 2, 64)
	if err := e.putRow(TableWarehouse, WarehouseKey(w), wh); err != nil {
		return err
	}
	dist, err := e.getRow(TableDistrict, DistrictKey(w, d))
	if err != nil {
		return err
	}
	dist["D_YTD"] = strconv.FormatFloat(fieldFloat(dist, "D_YTD")+amount, 'f', 2, 64)
	if err := e.putRow(TableDistrict, DistrictKey(w, d), dist); err != nil {
		return err
	}
	cust, err := e.getRow(TableCustomer, CustomerKey(w, d, c))
	if err != nil {
		return err
	}
	cust["C_BALANCE"] = strconv.FormatFloat(fieldFloat(cust, "C_BALANCE")-amount, 'f', 2, 64)
	cust["C_YTD_PAYMENT"] = strconv.FormatFloat(fieldFloat(cust, "C_YTD_PAYMENT")+amount, 'f', 2, 64)
	cust["C_PAYMENT_CNT"] = strconv.Itoa(fieldInt(cust, "C_PAYMENT_CNT") + 1)
	if err := e.putRow(TableCustomer, CustomerKey(w, d, c), cust); err != nil {
		return err
	}
	e.historySeq++
	return e.putRow(TableHistory, HistoryKey(w, d, c, e.historySeq), map[string]string{
		"H_AMOUNT": strconv.FormatFloat(amount, 'f', 2, 64),
	})
}

// OrderStatus is read-only: the customer's balance plus their most
// recent order and its order lines.
func (e *Executor) OrderStatus(w int) error {
	d := 1 + e.RNG.Intn(e.Cfg.DistrictsPerWH)
	c := NURand(e.RNG, 1023, 1, e.Cfg.CustomersPerDistrict)
	if _, err := e.getRow(TableCustomer, CustomerKey(w, d, c)); err != nil {
		return err
	}
	// Latest order: scan the tail of the district's order range.
	dist, err := e.getRow(TableDistrict, DistrictKey(w, d))
	if err != nil {
		return err
	}
	lastOID := fieldInt(dist, "D_NEXT_O_ID") - 1
	if lastOID < 1 {
		return nil
	}
	order, err := e.getRow(TableOrder, OrderKey(w, d, lastOID))
	if errors.Is(err, hbase.ErrNotFound) {
		return nil
	}
	if err != nil {
		return err
	}
	olCnt := fieldInt(order, "O_OL_CNT")
	_, err = e.Client.Scan(TableOrderLine, OrderLineKey(w, d, lastOID, 1), "", olCnt)
	return err
}

// Delivery processes the oldest undelivered order in every district of
// the warehouse: consume the new-order marker, stamp the order with a
// carrier, sum its lines, and credit the customer.
func (e *Executor) Delivery(w int) error {
	carrier := 1 + e.RNG.Intn(10)
	for d := 1; d <= e.Cfg.DistrictsPerWH; d++ {
		// Oldest new-order: scan from the start of the district's
		// new-order range.
		prefix := fmt.Sprintf("w%05d/d%03d/no", w, d)
		entries, err := e.Client.Scan(TableNewOrder, prefix, prefix+"~", 1)
		if err != nil {
			return err
		}
		if len(entries) == 0 {
			continue // no undelivered orders in this district
		}
		no := decodeRow(entries[0].Value)
		oid := fieldInt(no, "NO_O_ID")
		if err := e.Client.Delete(TableNewOrder, entries[0].Key); err != nil {
			return err
		}
		order, err := e.getRow(TableOrder, OrderKey(w, d, oid))
		if errors.Is(err, hbase.ErrNotFound) {
			continue
		}
		if err != nil {
			return err
		}
		order["O_CARRIER_ID"] = strconv.Itoa(carrier)
		if err := e.putRow(TableOrder, OrderKey(w, d, oid), order); err != nil {
			return err
		}
		olCnt := fieldInt(order, "O_OL_CNT")
		lines, err := e.Client.Scan(TableOrderLine, OrderLineKey(w, d, oid, 1), "", olCnt)
		if err != nil {
			return err
		}
		var total float64
		for _, l := range lines {
			total += fieldFloat(decodeRow(l.Value), "OL_AMOUNT")
		}
		cid := fieldInt(order, "O_C_ID")
		if cid < 1 {
			continue
		}
		cust, err := e.getRow(TableCustomer, CustomerKey(w, d, cid))
		if errors.Is(err, hbase.ErrNotFound) {
			continue
		}
		if err != nil {
			return err
		}
		cust["C_BALANCE"] = strconv.FormatFloat(fieldFloat(cust, "C_BALANCE")+total, 'f', 2, 64)
		cust["C_DELIVERY_CNT"] = strconv.Itoa(fieldInt(cust, "C_DELIVERY_CNT") + 1)
		if err := e.putRow(TableCustomer, CustomerKey(w, d, cid), cust); err != nil {
			return err
		}
	}
	return nil
}

// StockLevel is read-only: examine the order lines of the district's
// most recent 20 orders and count items with stock below a threshold.
func (e *Executor) StockLevel(w int) error {
	d := 1 + e.RNG.Intn(e.Cfg.DistrictsPerWH)
	threshold := 10 + e.RNG.Intn(11)
	dist, err := e.getRow(TableDistrict, DistrictKey(w, d))
	if err != nil {
		return err
	}
	nextOID := fieldInt(dist, "D_NEXT_O_ID")
	firstOID := nextOID - 20
	if firstOID < 1 {
		firstOID = 1
	}
	lines, err := e.Client.Scan(TableOrderLine, OrderLineKey(w, d, firstOID, 1), OrderLineKey(w, d, nextOID, 99), -1)
	if err != nil {
		return err
	}
	seen := make(map[int]bool)
	low := 0
	for _, l := range lines {
		item := fieldInt(decodeRow(l.Value), "OL_I_ID")
		if item == 0 || seen[item] {
			continue
		}
		seen[item] = true
		stock, err := e.getRow(TableStock, StockKey(w, item))
		if errors.Is(err, hbase.ErrNotFound) {
			continue
		}
		if err != nil {
			return err
		}
		if fieldInt(stock, "S_QUANTITY") < threshold {
			low++
		}
	}
	_ = low // result is reported to the terminal in real TPC-C
	return nil
}
