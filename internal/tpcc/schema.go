// Package tpcc reimplements the PyTPCC workload the paper uses for its
// versatility experiment (Section 6.3): the TPC-C schema (9 tables), the
// five transaction types with the standard mix (8% read-only / 92%
// update-heavy traffic), warehouse-based horizontal partitioning, and the
// tpmC metric (NewOrder transactions per minute).
//
// As in the paper's PyTPCC-on-HBase setup, transactions get HBase's
// isolation only — record-level atomicity, no multi-row ACID.
package tpcc

import (
	"fmt"
	"strconv"
	"strings"

	"met/internal/sim"
)

// Table names (the 9 TPC-C tables).
const (
	TableWarehouse = "warehouse"
	TableDistrict  = "district"
	TableCustomer  = "customer"
	TableHistory   = "history"
	TableNewOrder  = "new_order"
	TableOrder     = "orders"
	TableOrderLine = "order_line"
	TableItem      = "item"
	TableStock     = "stock"
)

// Tables lists all nine tables.
var Tables = []string{
	TableWarehouse, TableDistrict, TableCustomer, TableHistory,
	TableNewOrder, TableOrder, TableOrderLine, TableItem, TableStock,
}

// Config scales the database. Standard TPC-C sizes the tables per
// warehouse; tests shrink them.
type Config struct {
	Warehouses           int
	DistrictsPerWH       int
	CustomersPerDistrict int
	Items                int
	InitialOrdersPerDist int
	// ValueFiller pads every row to approximate real row widths
	// (TPC-C rows are a few hundred bytes).
	ValueFiller int
}

// Standard returns the paper's configuration: 30 warehouses (≈15 GB with
// full row fillers), 10 districts per warehouse, 3000 customers per
// district, 100k items.
func Standard() Config {
	return Config{
		Warehouses:           30,
		DistrictsPerWH:       10,
		CustomersPerDistrict: 3000,
		Items:                100_000,
		InitialOrdersPerDist: 3000,
		ValueFiller:          400,
	}
}

// Small returns a test-scale configuration.
func Small() Config {
	return Config{
		Warehouses:           2,
		DistrictsPerWH:       2,
		CustomersPerDistrict: 30,
		Items:                100,
		InitialOrdersPerDist: 10,
		ValueFiller:          16,
	}
}

// Validate sanity-checks the configuration.
func (c Config) Validate() error {
	if c.Warehouses < 1 || c.DistrictsPerWH < 1 || c.CustomersPerDistrict < 1 ||
		c.Items < 1 || c.InitialOrdersPerDist < 0 {
		return fmt.Errorf("tpcc: invalid config %+v", c)
	}
	return nil
}

// Key encodings. Every warehouse-scoped table is prefixed with the
// zero-padded warehouse id, which makes horizontal partitioning by
// warehouse a prefix split — "the usual setting for running TPC-C in
// distributed databases" the paper cites.

// WarehouseKey returns the key of warehouse w.
func WarehouseKey(w int) string { return fmt.Sprintf("w%05d", w) }

// DistrictKey returns the key of district d of warehouse w.
func DistrictKey(w, d int) string { return fmt.Sprintf("w%05d/d%03d", w, d) }

// CustomerKey returns the key of customer c in district (w, d).
func CustomerKey(w, d, c int) string { return fmt.Sprintf("w%05d/d%03d/c%06d", w, d, c) }

// HistoryKey returns a unique history row key.
func HistoryKey(w, d, c, seq int) string {
	return fmt.Sprintf("w%05d/d%03d/c%06d/h%09d", w, d, c, seq)
}

// OrderKey returns the key of order o in district (w, d).
func OrderKey(w, d, o int) string { return fmt.Sprintf("w%05d/d%03d/o%09d", w, d, o) }

// NewOrderKey returns the key of the new-order marker for order o.
func NewOrderKey(w, d, o int) string { return fmt.Sprintf("w%05d/d%03d/no%09d", w, d, o) }

// OrderLineKey returns the key of line l of order o.
func OrderLineKey(w, d, o, l int) string {
	return fmt.Sprintf("w%05d/d%03d/o%09d/l%02d", w, d, o, l)
}

// ItemKey returns the key of item i (items are not warehouse-scoped).
func ItemKey(i int) string { return fmt.Sprintf("i%06d", i) }

// StockKey returns the key of the stock row for item i at warehouse w.
func StockKey(w, i int) string { return fmt.Sprintf("w%05d/s%06d", w, i) }

// WarehousePrefix returns the key prefix shared by all of warehouse w's
// rows in warehouse-scoped tables, used to build split keys.
func WarehousePrefix(w int) string { return fmt.Sprintf("w%05d", w) }

// Row values are flat field maps serialized as "k=v;k=v;...#filler".
// TPC-C only needs a handful of numeric fields to be read-modify-write
// capable; the filler models realistic row widths.

// encodeRow serializes fields plus filler padding.
func encodeRow(fields map[string]string, filler int) []byte {
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	// Deterministic field order.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(fields[k])
	}
	b.WriteByte('#')
	for i := 0; i < filler; i++ {
		b.WriteByte('x')
	}
	return []byte(b.String())
}

// decodeRow parses a serialized row back into its fields.
func decodeRow(v []byte) map[string]string {
	out := make(map[string]string)
	s := string(v)
	if i := strings.IndexByte(s, '#'); i >= 0 {
		s = s[:i]
	}
	if s == "" {
		return out
	}
	for _, pair := range strings.Split(s, ";") {
		if eq := strings.IndexByte(pair, '='); eq > 0 {
			out[pair[:eq]] = pair[eq+1:]
		}
	}
	return out
}

// fieldInt reads an integer field (0 when absent or malformed).
func fieldInt(fields map[string]string, key string) int {
	n, _ := strconv.Atoi(fields[key])
	return n
}

// fieldFloat reads a float field (0 when absent or malformed).
func fieldFloat(fields map[string]string, key string) float64 {
	f, _ := strconv.ParseFloat(fields[key], 64)
	return f
}

// NURand is the TPC-C non-uniform random function NURand(A, x, y).
func NURand(r *sim.RNG, a, x, y int) int {
	c := 123 // constant; fixed run-to-run is permitted for reproduction
	return (((r.Intn(a+1) | (x + r.Intn(y-x+1))) + c) % (y - x + 1)) + x
}
