// Command metbench drives the functional mini-HBase cluster with YCSB or
// TPC-C load and reports real engine statistics (operations, cache hit
// ratios, flushes, region counts) — the functional-layer counterpart of
// cmd/metsim's model-based experiments.
//
// Usage:
//
//	metbench -workload A|B|C|D|E|F|tpcc [-servers 3] [-ops 20000] [-records 5000]
//	         [-concurrency 8] [-met]
//
// With -concurrency N > 1 the YCSB operations are fanned across N
// goroutines the way real YCSB drives HBase with a client thread pool,
// exercising the cluster's concurrent serving path.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"met"
	"met/internal/sim"
	"met/internal/tpcc"
	"met/internal/ycsb"
)

func main() {
	workload := flag.String("workload", "A", "YCSB workload letter (A-F) or 'tpcc'")
	servers := flag.Int("servers", 3, "region servers")
	ops := flag.Int("ops", 20000, "operations (or transactions for tpcc)")
	records := flag.Int64("records", 5000, "records to load per table")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	concurrency := flag.Int("concurrency", 1, "parallel client goroutines (YCSB only)")
	withMeT := flag.Bool("met", false, "attach the MeT controller during the run")
	flag.Parse()

	cluster, err := met.NewCluster(*servers)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	switch *workload {
	case "tpcc":
		runTPCC(cluster, *ops, *seed)
	default:
		if *concurrency > 1 {
			if *withMeT {
				fmt.Fprintln(os.Stderr, "metbench: -met is not supported with -concurrency > 1; running without the controller")
			}
			runYCSBParallel(cluster, *workload, *ops, *records, *seed, *concurrency)
		} else {
			runYCSB(cluster, *workload, *ops, *records, *seed, *withMeT)
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("\nwall time: %v\n", elapsed.Round(time.Millisecond))
	fmt.Println("cluster state:")
	for _, rs := range cluster.Master.Servers() {
		req := rs.Requests()
		fmt.Printf("  %s: regions=%d reads=%d writes=%d scans=%d locality=%.2f [%s]\n",
			rs.Name(), rs.NumRegions(), req.Reads, req.Writes, req.Scans, rs.Locality(), rs.Config())
	}
}

// workloadSpec resolves a paper workload letter, sized for the bench.
func workloadSpec(letter string, records int64) *ycsb.Workload {
	for _, w := range ycsb.PaperWorkloads() {
		if w.Name == letter {
			w.RecordCount = records
			w.FieldLengthBytes = 128
			return &w
		}
	}
	fmt.Fprintf(os.Stderr, "metbench: unknown workload %q\n", letter)
	os.Exit(2)
	return nil
}

func runYCSB(cluster *met.Cluster, letter string, ops int, records int64, seed uint64, withMeT bool) {
	spec := workloadSpec(letter, records)
	runner, err := ycsb.NewRunner(*spec, cluster.Client, sim.NewRNG(seed))
	if err != nil {
		log.Fatal(err)
	}
	if err := runner.CreateTable(cluster.Master); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loading %d records into %s...\n", records, spec.TableName())
	if err := runner.Load(0); err != nil {
		log.Fatal(err)
	}

	var ctrl *met.Controller
	if withMeT {
		params := met.DefaultParams()
		params.MinSamples = 2
		params.MinNodes = len(cluster.Master.Servers())
		params.MaxNodes = params.MinNodes
		ctrl = met.NewController(cluster, params, 100)
		ctrl.Tick(0)
		ctrl.Monitor.Reset()
	}
	fmt.Printf("running %d operations of Workload%s (%s)...\n", ops, letter, spec.Scenario)
	batch := ops / 10
	if batch < 1 {
		batch = 1
	}
	now := 30 * sim.Second
	for done := 0; done < ops; done += batch {
		n := batch
		if ops-done < n {
			n = ops - done
		}
		if err := runner.Run(n); err != nil {
			log.Fatal(err)
		}
		if ctrl != nil {
			ctrl.Tick(now)
			now += 30 * sim.Second
		}
	}
	fmt.Printf("completed: %d ops, %d errors\n", runner.TotalCompleted(), runner.Errors())
	for op, n := range runner.Completed() {
		fmt.Printf("  %-7s %d\n", op, n)
	}
	if ctrl != nil {
		fmt.Printf("MeT: %d decisions, %d actuations\n", ctrl.Decisions(), ctrl.Actuations())
	}
}

func runYCSBParallel(cluster *met.Cluster, letter string, ops int, records int64, seed uint64, concurrency int) {
	spec := workloadSpec(letter, records)
	runner, err := ycsb.NewParallelRunner(*spec, cluster.Client, concurrency)
	if err != nil {
		log.Fatal(err)
	}
	if err := runner.CreateTable(cluster.Master); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loading %d records into %s (%d loaders)...\n", records, spec.TableName(), concurrency)
	if err := runner.Load(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running %d operations of Workload%s across %d goroutines...\n", ops, letter, concurrency)
	start := time.Now()
	if err := runner.Run(ops, seed); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("completed: %d ops, %d errors, %.0f ops/sec\n",
		runner.TotalCompleted(), runner.Errors(), float64(runner.TotalCompleted())/elapsed.Seconds())
	if n := runner.Transient(); n > 0 {
		fmt.Printf("  (%d ops dropped on topology churn)\n", n)
	}
	for op, n := range runner.Completed() {
		fmt.Printf("  %-7s %d\n", op, n)
	}
}

func runTPCC(cluster *met.Cluster, txs int, seed uint64) {
	cfg := tpcc.Small()
	cfg.Warehouses = 3
	cfg.Items = 300
	loader := &tpcc.Loader{Cfg: cfg, Client: cluster.Client}
	if err := loader.CreateTables(cluster.Master, 1); err != nil {
		log.Fatal(err)
	}
	rows, err := loader.Load()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows (%d warehouses)\n", rows, cfg.Warehouses)
	driver := tpcc.NewDriver(tpcc.NewExecutor(cfg, cluster.Client, sim.NewRNG(seed)))
	fmt.Printf("running %d transactions...\n", txs)
	if err := driver.Run(txs); err != nil {
		log.Fatal(err)
	}
	res := driver.Result()
	fmt.Printf("completed: %d txs (%.1f%% read-only), %d errors\n",
		res.Total(), 100*res.ReadOnlyFraction(), res.Errors)
	for _, tx := range []tpcc.TxType{tpcc.TxNewOrder, tpcc.TxPayment, tpcc.TxOrderStatus, tpcc.TxDelivery, tpcc.TxStockLevel} {
		fmt.Printf("  %-13s %d\n", tx, res.Completed[tx])
	}
}
