// Command metbench drives the functional mini-HBase cluster with YCSB or
// TPC-C load and reports real engine statistics (operations, cache hit
// ratios, flushes, region counts) — the functional-layer counterpart of
// cmd/metsim's model-based experiments.
//
// Usage:
//
//	metbench -workload A|B|C|D|E|F|tpcc [-servers 3] [-ops 20000] [-records 5000]
//	         [-concurrency 8] [-met] [-durable DIR] [-json out.json] [-coldstart]
//	         [-procs N [-failover]]
//
// With -procs N the bootstrapped durable cluster is restarted as 1
// master + N region-server OS processes (the metnode binary) and the
// load runs over the networked RPC client; -failover additionally
// kill -9s workers and proves the recovery loss bounds (see procs.go).
//
// With -concurrency N > 1 the YCSB operations are fanned across N
// goroutines the way real YCSB drives HBase with a client thread pool,
// exercising the cluster's concurrent serving path.
//
// With -durable DIR every region store runs on the on-disk backend
// (met/internal/durable): group-committed WAL, SSTables, crash
// recovery. Without it, stores are in-memory as in the paper's
// simulated experiments.
//
// With -json FILE a machine-readable result (ns/op, ops/sec, per-op
// counts, per-server engine state) is written for trajectory tracking
// in CI.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"reflect"
	"runtime"
	"runtime/pprof"
	"time"

	"met"
	"met/internal/compaction"
	"met/internal/hbase"
	"met/internal/kv"
	"met/internal/obs"
	"met/internal/replication"
	"met/internal/sim"
	"met/internal/tpcc"
	"met/internal/ycsb"
)

// result is the machine-readable benchmark report (-json).
type result struct {
	Workload  string `json:"workload"`
	Sustained bool   `json:"sustained,omitempty"`
	Ops       int    `json:"ops"`
	Records   int64  `json:"records"`
	Servers   int    `json:"servers"`
	// GoMaxProcs and NumCPU pin the parallelism the run actually had —
	// single-core CI caps observable speedup (and group-commit
	// batching) at 1×, so trajectory comparisons must be per-core.
	GoMaxProcs  int                `json:"gomaxprocs"`
	NumCPU      int                `json:"num_cpu"`
	Concurrency int                `json:"concurrency"`
	Durable     bool               `json:"durable"`
	WallSeconds float64            `json:"wall_seconds"`
	NsPerOp     float64            `json:"ns_per_op"`
	OpsPerSec   float64            `json:"ops_per_sec"`
	Completed   int64              `json:"completed"`
	Errors      int64              `json:"errors"`
	Transient   int64              `json:"transient,omitempty"`
	PerOp       map[string]int64   `json:"per_op,omitempty"`
	PerOpNs     map[string]float64 `json:"per_op_ns,omitempty"`
	// Latency carries the cluster-side latency distributions (merged
	// over all servers): serving classes (get/put/scan) plus every
	// engine-side duration (fsync, flush, compaction, replication_ship,
	// tail_ship). Percentiles are in nanoseconds, bucketed to <=12.5%
	// relative error; counts and means are exact.
	Latency map[string]obs.LatencySummary `json:"latency,omitempty"`
	// ClientLatency is the client-observed per-op distribution from the
	// parallel runner's worker shards (includes routing and retries).
	ClientLatency map[string]obs.LatencySummary `json:"client_latency,omitempty"`
	SlowOps       int64                         `json:"slow_ops,omitempty"`
	Engine        *engineState                  `json:"engine,omitempty"`
	Compaction    *compactionState              `json:"compaction,omitempty"`
	Replication   *replicationState             `json:"replication,omitempty"`
	// LostWrites is the failover scenario's reported data loss after the
	// clean-flush kill; LostWritesUnflushed after the hot-memstore kill
	// (bounded by the unsynced tail — zero after a quiesce).
	LostWrites          int64         `json:"lost_writes,omitempty"`
	LostWritesUnflushed int64         `json:"lost_writes_unflushed,omitempty"`
	WAL                 *walState     `json:"wal,omitempty"`
	Cluster             []serverState `json:"cluster"`
	// Procs records the real OS processes a -procs run drove (CI
	// asserts the multi-process claim against the PIDs).
	Procs *procState `json:"procs,omitempty"`
}

// writeResultJSON emits one machine-readable report file.
func writeResultJSON(path string, res *result) {
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("results written to %s\n", path)
}

// walState summarizes the cluster's shared write-ahead logs: the
// writes-per-fsync ratio is the group-commit batching proof (one fsync
// stream per server, shared by all its regions).
type walState struct {
	Appends        int64   `json:"appends"`
	SyncRounds     int64   `json:"sync_rounds"`
	Bytes          int64   `json:"bytes"`
	Segments       int     `json:"segments"`
	WritesPerFsync float64 `json:"writes_per_fsync"`
}

// newWALState sums the live servers' shared-log snapshots.
func newWALState(servers []*hbase.RegionServer) *walState {
	w := &walState{}
	for _, rs := range servers {
		st := rs.WALStats()
		w.Appends += st.Appends
		w.SyncRounds += st.SyncRounds
		w.Bytes += st.Bytes
		w.Segments += st.Segments
	}
	if w.SyncRounds > 0 {
		w.WritesPerFsync = float64(w.Appends) / float64(w.SyncRounds)
	}
	return w
}

// engineState summarizes kv engine counters (per server, and summed
// cluster-wide at the top level).
type engineState struct {
	Flushes              int64   `json:"flushes"`
	FlushedBytes         int64   `json:"flushed_bytes"`
	Compactions          int64   `json:"compactions"`
	CompactedBytes       int64   `json:"compacted_bytes"`
	CompactionQueueDepth int64   `json:"compaction_queue_depth"`
	StallMillis          float64 `json:"stall_ms"`
	StalledWrites        int64   `json:"stalled_writes"`
	WriteAmplification   float64 `json:"write_amplification"`
}

// compactionState summarizes a background compactor pool.
type compactionState struct {
	QueueDepth      int     `json:"queue_depth"`
	Running         int     `json:"running"`
	Compactions     int64   `json:"compactions"`
	Conflicts       int64   `json:"conflicts"`
	Failures        int64   `json:"failures"`
	BytesIn         int64   `json:"bytes_in"`
	BytesOut        int64   `json:"bytes_out"`
	CompactionMs    float64 `json:"compaction_ms"`
	BudgetWaitMs    float64 `json:"budget_wait_ms"`
	ForegroundBytes int64   `json:"foreground_bytes"`
	BackgroundBytes int64   `json:"background_bytes"`
}

// replicationState summarizes a server's SSTable shipper.
type replicationState struct {
	QueueDepth   int   `json:"queue_depth"`
	FilesShipped int64 `json:"files_shipped"`
	BytesShipped int64 `json:"bytes_shipped"`
	FilesRetired int64 `json:"files_retired"`
	Syncs        int64 `json:"syncs"`
	Failures     int64 `json:"failures"`
	TailShips    int64 `json:"tail_ships,omitempty"`
	TailBytes    int64 `json:"tail_bytes,omitempty"`
	TailFrames   int64 `json:"tail_frames,omitempty"`
}

// newReplicationState converts a replicator snapshot for the report.
func newReplicationState(rs replication.Stats) *replicationState {
	return &replicationState{
		QueueDepth:   rs.QueueDepth + rs.Active,
		FilesShipped: rs.FilesShipped,
		BytesShipped: rs.BytesShipped,
		FilesRetired: rs.FilesRetired,
		Syncs:        rs.Syncs,
		Failures:     rs.Failures,
		TailShips:    rs.TailShips,
		TailBytes:    rs.TailBytes,
		TailFrames:   rs.TailFrames,
	}
}

// serverState is one region server's post-run engine state.
type serverState struct {
	Name        string            `json:"name"`
	Regions     int               `json:"regions"`
	Reads       int64             `json:"reads"`
	Writes      int64             `json:"writes"`
	Scans       int64             `json:"scans"`
	Locality    float64           `json:"locality"`
	Engine      *engineState      `json:"engine,omitempty"`
	Compaction  *compactionState  `json:"compaction,omitempty"`
	Replication *replicationState `json:"replication,omitempty"`
}

// newEngineState converts a kv stats snapshot for the JSON report.
func newEngineState(st kv.Stats) *engineState {
	return &engineState{
		Flushes:              st.Flushes,
		FlushedBytes:         st.FlushedBytes,
		Compactions:          st.Compactions,
		CompactedBytes:       st.CompactedBytes,
		CompactionQueueDepth: st.CompactionQueueDepth,
		StallMillis:          float64(st.StallNanos) / 1e6,
		StalledWrites:        st.StalledWrites,
		WriteAmplification:   st.WriteAmplification,
	}
}

// newCompactionState converts a pool snapshot for the JSON report.
func newCompactionState(ps compaction.PoolStats) *compactionState {
	return &compactionState{
		QueueDepth:      ps.QueueDepth,
		Running:         ps.Running,
		Compactions:     ps.Compactions,
		Conflicts:       ps.Conflicts,
		Failures:        ps.Failures,
		BytesIn:         ps.BytesIn,
		BytesOut:        ps.BytesOut,
		CompactionMs:    float64(ps.CompactionNanos) / 1e6,
		BudgetWaitMs:    float64(ps.Budget.WaitNanos) / 1e6,
		ForegroundBytes: ps.Budget.ForegroundBytes,
		BackgroundBytes: ps.Budget.BackgroundBytes,
	}
}

func main() {
	workload := flag.String("workload", "A", "YCSB workload letter (A-F) or 'tpcc'")
	servers := flag.Int("servers", 3, "region servers")
	ops := flag.Int("ops", 20000, "operations (or transactions for tpcc)")
	records := flag.Int64("records", 5000, "records to load per table")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	concurrency := flag.Int("concurrency", 1, "parallel client goroutines (YCSB only)")
	withMeT := flag.Bool("met", false, "attach the MeT controller during the run")
	durableDir := flag.String("durable", "", "data directory: run region stores on the durable disk backend")
	jsonOut := flag.String("json", "", "write machine-readable results to this file")
	sustained := flag.Bool("sustained", false,
		"sustained write-heavy scenario: workload B (100% update), bigger values and a tiny heap so flushes, background compactions and write stalls actually happen during the run")
	coldstart := flag.Bool("coldstart", false,
		"cold-start scenario (requires -durable): write acknowledged rows across two tables, move a region, hard-stop the whole cluster mid-run, reopen it from the data directory alone (met.OpenCluster) and verify every acknowledged write plus the recovered layout")
	procs := flag.Int("procs", 0,
		"networked multi-process scenario (requires -durable): restart the bootstrapped cluster as 1 master + N region-server OS processes (metnode) over the RPC layer and drive load through the networked client; with -failover additionally kill -9 workers and prove the loss bounds")
	nodeBin := flag.String("node-bin", "", "path to the metnode binary for -procs (default: next to metbench, then $PATH)")
	tailLag := flag.Int("tail-lag", 64, "tail-shipping floor in records for -procs (bounds mid-burst kill loss)")
	failover := flag.Bool("failover", false,
		"failover scenario (requires -durable): 3+ servers with replication factor 2, write acknowledged rows, cleanly flush and quiesce replication, hard-kill one server AND rename its primary region directories away, Master.RecoverServer from the replica SSTables alone, verify zero reported loss and every acknowledged row")
	maxFiles := flag.Int("max-store-files", 0, "soft store-file threshold triggering background compaction (0 = default)")
	stallFiles := flag.Int("stall-files", 0, "hard store-file ceiling stalling writers (0 = 3x soft threshold)")
	compactPolicy := flag.String("compact-policy", "", "background compaction policy: tiered or leveled (default tiered)")
	compactBudget := flag.Int64("compact-budget-mb", 0, "background compaction I/O budget in MB/s shared with serving (0 = unlimited)")
	compactWorkers := flag.Int("compact-workers", 0, "compactor pool workers per server (0 = default 1, negative disables background compaction)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a post-run heap profile to this file")
	slowlog := flag.Duration("slowlog", 0, "arm slow-op tracing: ops at least this slow are kept with per-stage spans (0 disables)")
	debugAddr := flag.String("debug-addr", "", "serve the HTTP debug plane (/metrics, /healthz, /debug/pprof) on this address for the run's duration")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := hbase.DefaultServerConfig()
	cfg.SlowOpThreshold = *slowlog
	cfg.DataDir = *durableDir
	cfg.Compaction = hbase.CompactionConfig{
		MaxStoreFiles:     *maxFiles,
		StallStoreFiles:   *stallFiles,
		BudgetBytesPerSec: *compactBudget << 20,
		Workers:           *compactWorkers,
		Policy:            *compactPolicy,
	}
	if *sustained {
		if *workload != "A" && *workload != "B" {
			fmt.Fprintln(os.Stderr, "metbench: -sustained forces workload B")
		}
		*workload = "B"
		// A 1 MiB heap puts the per-region flush threshold in the
		// hundreds of KB, so a short run flushes dozens of files and
		// the background compactor (not the write lock) has to keep
		// the file count bounded.
		cfg.HeapBytes = 1 << 20
		if cfg.Compaction.MaxStoreFiles == 0 {
			cfg.Compaction.MaxStoreFiles = 4
		}
		valueBytes = 512
	}
	if *coldstart {
		if *durableDir == "" {
			log.Fatal("metbench: -coldstart requires -durable DIR")
		}
		runColdStart(*durableDir, cfg, *servers, *ops, *seed, *jsonOut)
		return
	}
	if *procs > 0 {
		if *durableDir == "" {
			log.Fatal("metbench: -procs requires -durable DIR")
		}
		runProcs(*durableDir, cfg, *procs, *ops, *seed, *nodeBin, *failover, *tailLag, *jsonOut)
		return
	}
	if *failover {
		if *durableDir == "" {
			log.Fatal("metbench: -failover requires -durable DIR")
		}
		runFailover(*durableDir, cfg, *servers, *ops, *seed, *jsonOut)
		return
	}
	cluster, err := met.NewClusterConfig(*servers, cfg)
	if errors.Is(err, met.ErrClusterExists) {
		// The data directory holds a previous run's cluster: cold-start
		// it (servers, tables, assignment and data all recover from
		// disk) and drive the workload against the recovered state.
		fmt.Fprintf(os.Stderr, "metbench: %s holds an existing cluster; cold-starting it\n", *durableDir)
		cluster, err = met.OpenCluster(*durableDir)
	}
	if err != nil {
		log.Fatal(err)
	}
	res := &result{
		Workload: *workload, Sustained: *sustained, Ops: *ops, Records: *records,
		Servers: *servers, Concurrency: *concurrency, Durable: *durableDir != "",
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
	}
	if *debugAddr != "" {
		srv, err := cluster.ServeDebug(*debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("debug plane on http://%s/metrics\n", srv.Addr())
	}
	start := time.Now()
	switch *workload {
	case "tpcc":
		if *concurrency > 1 {
			fmt.Fprintln(os.Stderr, "metbench: -concurrency applies to YCSB only; tpcc runs single-threaded")
			res.Concurrency = 1
		}
		runTPCC(cluster, *ops, *seed, res)
	default:
		if *concurrency > 1 {
			if *withMeT {
				fmt.Fprintln(os.Stderr, "metbench: -met is not supported with -concurrency > 1; running without the controller")
			}
			runYCSBParallel(cluster, *workload, *ops, *records, *seed, *concurrency, res)
		} else {
			runYCSB(cluster, *workload, *ops, *records, *seed, *withMeT, res)
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("\nwall time: %v\n", elapsed.Round(time.Millisecond))
	fmt.Println("cluster state:")
	var engineTotal kv.Stats
	var poolTotal compaction.PoolStats
	var repTotal replication.Stats
	for _, rs := range cluster.Master.Servers() {
		req := rs.Requests()
		eng := rs.EngineStats()
		cs := rs.CompactionStats()
		reps := rs.ReplicationStats()
		engineTotal = engineTotal.Add(eng)
		poolTotal = poolTotal.Add(cs)
		repTotal = repTotal.Add(reps)
		fmt.Printf("  %s: regions=%d reads=%d writes=%d scans=%d locality=%.2f [%s]\n",
			rs.Name(), rs.NumRegions(), req.Reads, req.Writes, req.Scans, rs.Locality(), rs.Config())
		fmt.Printf("    engine: flushes=%d compactions=%d queue=%d stall=%.1fms write-amp=%.2f\n",
			eng.Flushes, eng.Compactions, eng.CompactionQueueDepth,
			float64(eng.StallNanos)/1e6, eng.WriteAmplification)
		res.Cluster = append(res.Cluster, serverState{
			Name: rs.Name(), Regions: rs.NumRegions(),
			Reads: req.Reads, Writes: req.Writes, Scans: req.Scans,
			Locality:    rs.Locality(),
			Engine:      newEngineState(eng),
			Compaction:  newCompactionState(cs),
			Replication: newReplicationState(reps),
		})
	}
	res.Engine = newEngineState(engineTotal)
	res.Compaction = newCompactionState(poolTotal)
	res.Replication = newReplicationState(repTotal)
	fmt.Printf("engine totals: flushes=%d compactions=%d compacted=%dKB stall=%.1fms write-amp=%.2f budget-wait=%.1fms\n",
		engineTotal.Flushes, engineTotal.Compactions, engineTotal.CompactedBytes>>10,
		float64(engineTotal.StallNanos)/1e6, engineTotal.WriteAmplification,
		float64(poolTotal.Budget.WaitNanos)/1e6)
	fmt.Printf("replication totals: shipped=%d files (%dKB), retired=%d, syncs=%d, failures=%d\n",
		repTotal.FilesShipped, repTotal.BytesShipped>>10, repTotal.FilesRetired,
		repTotal.Syncs, repTotal.Failures)
	if wal := newWALState(cluster.Master.Servers()); wal.Appends > 0 {
		res.WAL = wal
		fmt.Printf("wal totals: appends=%d sync-rounds=%d writes/fsync=%.2f (%dKB, %d segments)\n",
			wal.Appends, wal.SyncRounds, wal.WritesPerFsync, wal.Bytes>>10, wal.Segments)
	}
	res.Latency = clusterLatency(cluster.Master.Servers())
	printLatencyTable(res.Latency)
	if *slowlog > 0 {
		slow := cluster.Master.SlowOps()
		var total int64
		for _, rs := range cluster.Master.Servers() {
			total += rs.SlowOpsTotal()
		}
		res.SlowOps = total
		fmt.Printf("slow ops (>= %v): %d total, %d retained\n", *slowlog, total, len(slow))
		show := slow
		if len(show) > 10 {
			show = show[len(show)-10:]
		}
		for _, op := range show {
			fmt.Printf("  %-6s %s/%s %v", op.Op, op.Table, op.Key, op.Total.Round(time.Microsecond))
			for _, sp := range op.Spans {
				fmt.Printf(" %s=%v", sp.Stage, sp.Dur.Round(time.Microsecond))
			}
			fmt.Println()
		}
	}
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("results written to %s\n", *jsonOut)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
	}
}

// clusterLatency merges every server's latency snapshots into one
// cluster-wide summary map for the report.
func clusterLatency(servers []*hbase.RegionServer) map[string]obs.LatencySummary {
	var get, put, scan, fsync, flush, compact, ship, tail obs.Snapshot
	for _, rs := range servers {
		ls := rs.LatencyStats()
		get.Merge(ls.Get)
		put.Merge(ls.Put)
		scan.Merge(ls.Scan)
		fsync.Merge(ls.Fsync)
		flush.Merge(ls.Flush)
		compact.Merge(ls.Compaction)
		ship.Merge(ls.ReplicationShip)
		tail.Merge(ls.TailShip)
	}
	out := make(map[string]obs.LatencySummary, 8)
	add := func(name string, s *obs.Snapshot) {
		if s.Count() > 0 {
			out[name] = s.Summary()
		}
	}
	add("get", &get)
	add("put", &put)
	add("scan", &scan)
	add("fsync", &fsync)
	add("flush", &flush)
	add("compaction", &compact)
	add("replication_ship", &ship)
	add("tail_ship", &tail)
	return out
}

// printLatencyTable renders the percentile table on stdout in a fixed
// row order so runs diff cleanly.
func printLatencyTable(lat map[string]obs.LatencySummary) {
	if len(lat) == 0 {
		return
	}
	fmt.Println("latency (cluster-wide):")
	fmt.Printf("  %-16s %10s %12s %12s %12s %12s %12s %12s\n",
		"class", "count", "mean", "p50", "p95", "p99", "p999", "max")
	for _, name := range []string{"get", "put", "scan", "fsync", "flush", "compaction", "replication_ship", "tail_ship"} {
		s, ok := lat[name]
		if !ok {
			continue
		}
		fmt.Printf("  %-16s %10d %12v %12v %12v %12v %12v %12v\n",
			name, s.Count,
			time.Duration(s.Mean).Round(time.Microsecond),
			time.Duration(s.P50).Round(time.Microsecond),
			time.Duration(s.P95).Round(time.Microsecond),
			time.Duration(s.P99).Round(time.Microsecond),
			time.Duration(s.P999).Round(time.Microsecond),
			time.Duration(s.Max).Round(time.Microsecond))
	}
}

// finish fills the timing-derived fields from the measured run phase
// (loading is excluded).
func (r *result) finish(elapsed time.Duration) {
	r.WallSeconds = elapsed.Seconds()
	if r.Completed > 0 {
		r.NsPerOp = float64(elapsed.Nanoseconds()) / float64(r.Completed)
		r.OpsPerSec = float64(r.Completed) / elapsed.Seconds()
	}
}

// valueBytes is the benchmark value size; the sustained scenario raises
// it so a short run moves enough bytes to keep compaction busy.
var valueBytes = 128

// workloadSpec resolves a paper workload letter, sized for the bench.
func workloadSpec(letter string, records int64) *ycsb.Workload {
	for _, w := range ycsb.PaperWorkloads() {
		if w.Name == letter {
			w.RecordCount = records
			w.FieldLengthBytes = valueBytes
			return &w
		}
	}
	fmt.Fprintf(os.Stderr, "metbench: unknown workload %q\n", letter)
	os.Exit(2)
	return nil
}

func runYCSB(cluster *met.Cluster, letter string, ops int, records int64, seed uint64, withMeT bool, res *result) {
	spec := workloadSpec(letter, records)
	runner, err := ycsb.NewRunner(*spec, cluster.Client, sim.NewRNG(seed))
	if err != nil {
		log.Fatal(err)
	}
	if err := runner.CreateTable(cluster.Master); err != nil && !errors.Is(err, met.ErrTableExists) {
		log.Fatal(err)
	}
	fmt.Printf("loading %d records into %s...\n", records, spec.TableName())
	if err := runner.Load(0); err != nil {
		log.Fatal(err)
	}

	var ctrl *met.Controller
	if withMeT {
		params := met.DefaultParams()
		params.MinSamples = 2
		params.MinNodes = len(cluster.Master.Servers())
		params.MaxNodes = params.MinNodes
		ctrl = met.NewController(cluster, params, 100)
		ctrl.Tick(0)
		ctrl.Monitor.Reset()
	}
	fmt.Printf("running %d operations of Workload%s (%s)...\n", ops, letter, spec.Scenario)
	batch := ops / 10
	if batch < 1 {
		batch = 1
	}
	now := 30 * sim.Second
	start := time.Now()
	for done := 0; done < ops; done += batch {
		n := batch
		if ops-done < n {
			n = ops - done
		}
		if err := runner.Run(n); err != nil {
			log.Fatal(err)
		}
		if ctrl != nil {
			ctrl.Tick(now)
			now += 30 * sim.Second
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("completed: %d ops, %d errors\n", runner.TotalCompleted(), runner.Errors())
	res.Completed = runner.TotalCompleted()
	res.Errors = runner.Errors()
	res.PerOp = make(map[string]int64)
	res.PerOpNs = make(map[string]float64)
	nanos := runner.OpNanos()
	for op, n := range runner.Completed() {
		fmt.Printf("  %-7s %d (%.0f ns/op)\n", op, n, nanos[op])
		res.PerOp[op.String()] = n
		res.PerOpNs[op.String()] = nanos[op]
	}
	res.finish(elapsed)
	if ctrl != nil {
		fmt.Printf("MeT: %d decisions, %d actuations\n", ctrl.Decisions(), ctrl.Actuations())
	}
}

func runYCSBParallel(cluster *met.Cluster, letter string, ops int, records int64, seed uint64, concurrency int, res *result) {
	spec := workloadSpec(letter, records)
	runner, err := ycsb.NewParallelRunner(*spec, cluster.Client, concurrency)
	if err != nil {
		log.Fatal(err)
	}
	if err := runner.CreateTable(cluster.Master); err != nil && !errors.Is(err, met.ErrTableExists) {
		log.Fatal(err)
	}
	fmt.Printf("loading %d records into %s (%d loaders)...\n", records, spec.TableName(), concurrency)
	if err := runner.Load(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running %d operations of Workload%s across %d goroutines...\n", ops, letter, concurrency)
	start := time.Now()
	if err := runner.Run(ops, seed); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("completed: %d ops, %d errors, %.0f ops/sec\n",
		runner.TotalCompleted(), runner.Errors(), float64(runner.TotalCompleted())/elapsed.Seconds())
	if n := runner.Transient(); n > 0 {
		fmt.Printf("  (%d ops dropped on topology churn)\n", n)
	}
	res.Completed = runner.TotalCompleted()
	res.Errors = runner.Errors()
	res.Transient = runner.Transient()
	res.PerOp = make(map[string]int64)
	res.PerOpNs = make(map[string]float64)
	res.ClientLatency = make(map[string]obs.LatencySummary)
	nanos := runner.OpNanos()
	lats := runner.OpLatencies()
	for op, n := range runner.Completed() {
		s := lats[op]
		fmt.Printf("  %-7s %d (mean %.0f ns/op, p99 %v)\n",
			op, n, nanos[op], time.Duration(s.P99).Round(time.Microsecond))
		res.PerOp[op.String()] = n
		res.PerOpNs[op.String()] = nanos[op]
		res.ClientLatency[op.String()] = s
	}
	res.finish(elapsed)
}

// runColdStart is the whole-cluster recovery proof: acknowledged writes
// land across two tables and every server, one region moves mid-run,
// the cluster is hard-stopped (no flush, no clean close — the on-disk
// state of a process kill) and reopened from the data directory alone.
// Every acknowledged write must read back through normal client routing
// on the reopened cluster, the recovered layout must match the
// pre-crash one exactly, and the moved region must compact on its
// destination server's pool. Any violation exits non-zero, so CI can
// run this as a per-PR gate.
func runColdStart(dataDir string, cfg met.ServerConfig, servers, ops int, seed uint64, jsonOut string) {
	if servers < 3 {
		fmt.Fprintln(os.Stderr, "metbench: -coldstart raises -servers to 3 (the acceptance floor)")
		servers = 3
	}
	// A small heap keeps flushes happening at bench volumes, so recovery
	// exercises SSTables and WAL tails, not just one big memstore replay.
	cfg.HeapBytes = 1 << 20
	cluster, err := met.NewClusterConfig(servers, cfg)
	if err != nil {
		log.Fatal(err)
	}
	m, c := cluster.Master, cluster.Client
	tables := []string{"orders", "users"}
	splits := map[string][]string{"users": {"g", "p"}, "orders": {"m"}}
	for _, tn := range tables {
		if _, err := m.CreateTable(tn, splits[tn]); err != nil {
			log.Fatal(err)
		}
	}
	rng := sim.NewRNG(seed)
	acked := make(map[string]map[string]string, len(tables)) // table -> key -> value
	for _, tn := range tables {
		acked[tn] = make(map[string]string)
	}
	write := func(n int) {
		for i := 0; i < n; i++ {
			tn := tables[rng.Intn(len(tables))]
			// Keys spread over the whole alphabet so every pre-split
			// region — and therefore every server — holds rows.
			key := fmt.Sprintf("%c%07x", byte('a'+rng.Intn(26)), rng.Uint64()&0xfffffff)
			val := fmt.Sprintf("%s/%s/v%d", tn, key, i)
			if err := c.Put(tn, key, []byte(val)); err != nil {
				log.Fatalf("metbench: coldstart put %s/%s: %v", tn, key, err)
			}
			acked[tn][key] = val
		}
	}
	fmt.Printf("coldstart: writing %d rows across %d tables on %d servers...\n", ops, len(tables), servers)
	write(ops / 2)

	// Move one region so recovery must also prove the moved region's
	// directory, assignment and compactor attribution survive. The
	// region must actually hold rows, or the whole move check is
	// vacuous.
	tbl, _ := m.Table("users")
	movedRegion := tbl.Regions()[0]
	moved := movedRegion.Name()
	if movedRegion.DataBytes() == 0 {
		log.Fatalf("metbench: coldstart: region %s chosen for the move holds no data", moved)
	}
	src, _ := m.HostOf(moved)
	var dst string
	for _, rs := range m.Servers() {
		if rs.Name() != src {
			dst = rs.Name()
			break
		}
	}
	if err := m.MoveRegion(moved, dst); err != nil {
		log.Fatal(err)
	}
	write(ops - ops/2)

	preAssign := m.Assignment()
	preTables := m.Tables()
	// Rows must genuinely span >= 3 servers, or the whole-cluster claim
	// is weaker than advertised.
	hosts := make(map[string]bool)
	for _, tn := range tables {
		tb, _ := m.Table(tn)
		for _, r := range tb.Regions() {
			if r.DataBytes() > 0 {
				hosts[preAssign[r.Name()]] = true
			}
		}
	}
	if len(hosts) < 3 {
		log.Fatalf("metbench: coldstart: rows span %d servers, want >= 3", len(hosts))
	}
	fmt.Printf("coldstart: hard-stopping the cluster (moved %s %s -> %s)...\n", moved, src, dst)
	m.HardStop()

	reopened, err := met.OpenCluster(dataDir)
	if err != nil {
		log.Fatalf("metbench: coldstart reopen: %v", err)
	}
	m2, c2 := reopened.Master, reopened.Client
	if got := m2.Tables(); !reflect.DeepEqual(got, preTables) {
		log.Fatalf("metbench: coldstart tables %v != pre-crash %v", got, preTables)
	}
	if got := m2.Assignment(); !reflect.DeepEqual(got, preAssign) {
		log.Fatalf("metbench: coldstart assignment %v != pre-crash %v", got, preAssign)
	}
	total := 0
	for tn, rows := range acked {
		for k, want := range rows {
			v, err := c2.Get(tn, k)
			if err != nil || string(v) != want {
				log.Fatalf("metbench: coldstart lost acknowledged write %s/%s: %q, %v", tn, k, v, err)
			}
			total++
		}
	}
	// The moved region must be serviced by its destination's pool — and
	// the compaction must be real I/O, not an empty-store no-op. The
	// recovered rows may all sit in the replayed memstore, so flush
	// first: the major compaction then has at least one SSTable to
	// rewrite.
	dstRS, err := m2.Server(dst)
	if err != nil {
		log.Fatal(err)
	}
	var movedStore *kv.Store
	for _, r := range dstRS.Regions() {
		if r.Name() == moved {
			movedStore = r.Store()
		}
	}
	if movedStore == nil {
		log.Fatalf("metbench: coldstart: moved region %s not hosted on destination %s", moved, dst)
	}
	if err := movedStore.Flush(); err != nil {
		log.Fatal(err)
	}
	if movedStore.NumFiles() == 0 {
		log.Fatalf("metbench: coldstart: moved region %s recovered no data to compact", moved)
	}
	before := dstRS.CompactionStats()
	if _, err := dstRS.MajorCompact(moved); err != nil {
		log.Fatalf("metbench: coldstart major compact on destination: %v", err)
	}
	after := dstRS.CompactionStats()
	if after.Compactions <= before.Compactions || after.BytesIn <= before.BytesIn {
		log.Fatalf("metbench: coldstart: moved region did not really compact on destination pool (%d -> %d compactions, %d -> %d bytes)",
			before.Compactions, after.Compactions, before.BytesIn, after.BytesIn)
	}
	if n := movedStore.NumFiles(); n != 1 {
		log.Fatalf("metbench: coldstart: major compaction left %d files, want 1", n)
	}
	fmt.Printf("coldstart: OK — %d acknowledged rows verified, layout recovered, moved region compacted on %s\n", total, dst)
	if jsonOut != "" {
		res := &result{
			Workload: "coldstart", Ops: ops, Servers: servers, Durable: true,
			GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
			Completed: int64(total),
		}
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(jsonOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}

// runFailover is the replica-recovery proof: acknowledged rows land
// across two tables and every server with replication factor 2, every
// store is cleanly flushed and replication quiesced, then one server is
// hard-killed AND its primary region directories are renamed away
// (simulating its disk dying with it). Master.RecoverServer must reopen
// the dead server's regions on the followers holding their replica
// SSTables — provably from the copies alone — report exactly zero lost
// writes, and every acknowledged row must read back through normal
// client routing. The cluster must then keep serving, and a full cold
// start of the recovered layout must succeed. Any violation exits
// non-zero, so CI runs this as a per-PR gate.
func runFailover(dataDir string, cfg met.ServerConfig, servers, ops int, seed uint64, jsonOut string) {
	if servers < 3 {
		fmt.Fprintln(os.Stderr, "metbench: -failover raises -servers to 3 (quorum for replication factor 2 plus a survivor)")
		servers = 3
	}
	// Small heap: flushes produce real SSTables for replication to ship
	// at bench volumes.
	cfg.HeapBytes = 1 << 20
	cluster, err := met.NewClusterConfig(servers, cfg)
	if err != nil {
		log.Fatal(err)
	}
	m, c := cluster.Master, cluster.Client
	tables := []string{"orders", "users"}
	splits := map[string][]string{"users": {"g", "p"}, "orders": {"m"}}
	for _, tn := range tables {
		if _, err := m.CreateTable(tn, splits[tn]); err != nil {
			log.Fatal(err)
		}
	}
	rng := sim.NewRNG(seed)
	acked := make(map[string]map[string]string, len(tables))
	for _, tn := range tables {
		acked[tn] = make(map[string]string)
	}
	fmt.Printf("failover: writing %d rows across %d tables on %d servers (replication=2)...\n",
		ops, len(tables), servers)
	for i := 0; i < ops; i++ {
		tn := tables[rng.Intn(len(tables))]
		key := fmt.Sprintf("%c%07x", byte('a'+rng.Intn(26)), rng.Uint64()&0xfffffff)
		val := fmt.Sprintf("%s/%s/v%d", tn, key, i)
		if err := c.Put(tn, key, []byte(val)); err != nil {
			log.Fatalf("metbench: failover put %s/%s: %v", tn, key, err)
		}
		acked[tn][key] = val
	}

	// Clean flush + replication barrier: after this, losing any single
	// server must lose nothing.
	for _, rs := range m.Servers() {
		for _, r := range rs.Regions() {
			if err := r.Store().Flush(); err != nil {
				log.Fatal(err)
			}
		}
	}
	m.QuiesceReplication()

	// Hard-kill the server hosting the most data and take its primary
	// directories with it: recovery must come from the replicas.
	var victim *hbase.RegionServer
	for _, rs := range m.Servers() {
		if victim == nil || rs.NumRegions() > victim.NumRegions() {
			victim = rs
		}
	}
	victimRegions := victim.Regions()
	if len(victimRegions) == 0 {
		log.Fatal("metbench: failover: victim hosts no regions")
	}
	fmt.Printf("failover: hard-killing %s (%d regions) and quarantining its primary directories...\n",
		victim.Name(), len(victimRegions))
	victim.Shutdown()
	for _, r := range victimRegions {
		dir := hbase.RegionDataDir(dataDir, r.Name())
		if _, err := os.Stat(dir); err == nil {
			if err := os.Rename(dir, dir+".quarantine"); err != nil {
				log.Fatal(err)
			}
		}
	}

	report, err := m.RecoverServer(victim.Name())
	if err != nil {
		log.Fatalf("metbench: failover RecoverServer: %v", err)
	}
	if report.LostWrites != 0 {
		log.Fatalf("metbench: failover lost %d acknowledged writes after a clean flush (report %+v)",
			report.LostWrites, report)
	}
	for _, rec := range report.Regions {
		if rec.ReplicaFiles == 0 {
			log.Fatalf("metbench: failover: region %s recovered with zero replica files — nothing was shipped", rec.Region)
		}
		fmt.Printf("failover: %s -> %s on %s (%d replica SSTables, %d lost)\n",
			rec.Region, rec.NewRegion, rec.Source, rec.ReplicaFiles, rec.LostWrites)
	}
	total := 0
	for tn, rows := range acked {
		for k, want := range rows {
			v, err := c.Get(tn, k)
			if err != nil || string(v) != want {
				log.Fatalf("metbench: failover lost acknowledged write %s/%s: %q, %v", tn, k, v, err)
			}
			total++
		}
	}
	// The cluster keeps serving after the failover...
	if err := c.Put("users", "zz-post-failover", []byte("alive")); err != nil {
		log.Fatalf("metbench: failover: cluster dead after recovery: %v", err)
	}

	// Phase 2 — hot-memstore kill: write more acknowledged rows and kill
	// a second server WITHOUT flushing, taking its primary directories
	// AND its shared WAL with it. The replicas' SSTables cannot cover the
	// memstore, so zero loss here is the tail-streaming proof: the
	// replicator shipped the durable-but-unflushed WAL tail to the
	// followers, and RecoverServer replayed it. After a replication
	// quiesce the unsynced window is empty, so loss must be exactly zero.
	hotOps := ops / 4
	if hotOps < 100 {
		hotOps = 100
	}
	fmt.Printf("failover: phase 2 — writing %d more rows, killing a server with a hot (unflushed) memstore...\n", hotOps)
	for i := 0; i < hotOps; i++ {
		tn := tables[rng.Intn(len(tables))]
		key := fmt.Sprintf("%c%07x", byte('a'+rng.Intn(26)), rng.Uint64()&0xfffffff)
		val := fmt.Sprintf("%s/%s/hot%d", tn, key, i)
		if err := c.Put(tn, key, []byte(val)); err != nil {
			log.Fatalf("metbench: failover hot put %s/%s: %v", tn, key, err)
		}
		acked[tn][key] = val
	}
	m.QuiesceReplication()
	walTotal := newWALState(m.Servers())

	var victim2 *hbase.RegionServer
	for _, rs := range m.Servers() {
		if victim2 == nil || rs.NumRegions() > victim2.NumRegions() {
			victim2 = rs
		}
	}
	fmt.Printf("failover: hard-killing %s (%d regions) with its memstores hot, quarantining primaries and WAL...\n",
		victim2.Name(), victim2.NumRegions())
	victim2Regions := victim2.Regions()
	victim2.Shutdown()
	for _, r := range victim2Regions {
		dir := hbase.RegionDataDir(dataDir, r.Name())
		if _, err := os.Stat(dir); err == nil {
			if err := os.Rename(dir, dir+".quarantine"); err != nil {
				log.Fatal(err)
			}
		}
	}
	walDir := hbase.ServerWALDir(dataDir, victim2.Name())
	if _, err := os.Stat(walDir); err == nil {
		if err := os.Rename(walDir, walDir+".quarantine"); err != nil {
			log.Fatal(err)
		}
	}

	report2, err := m.RecoverServer(victim2.Name())
	if err != nil {
		log.Fatalf("metbench: failover RecoverServer (hot memstore): %v", err)
	}
	if report2.LostWrites != 0 {
		log.Fatalf("metbench: hot-memstore failover lost %d acknowledged writes — the shipped WAL tail must bound loss to the unsynced window, which a quiesce empties (report %+v)",
			report2.LostWrites, report2)
	}
	tailWrites := 0
	for _, rec := range report2.Regions {
		tailWrites += rec.TailWrites
		fmt.Printf("failover: %s -> %s on %s (%d replica SSTables, %d tail records replayed, %d lost)\n",
			rec.Region, rec.NewRegion, rec.Source, rec.ReplicaFiles, rec.TailWrites, rec.LostWrites)
	}
	if tailWrites == 0 {
		log.Fatal("metbench: hot-memstore failover replayed no tail records — the unflushed writes were recovered from somewhere they should not exist")
	}
	for tn, rows := range acked {
		for k, want := range rows {
			v, err := c.Get(tn, k)
			if err != nil || string(v) != want {
				log.Fatalf("metbench: hot-memstore failover lost acknowledged write %s/%s: %q, %v", tn, k, v, err)
			}
		}
	}

	// ...and the recovered layout survives a full cold start.
	m.HardStop()
	reopened, err := met.OpenCluster(dataDir)
	if err != nil {
		log.Fatalf("metbench: failover cold start after recovery: %v", err)
	}
	total = 0
	for tn, rows := range acked {
		for k, want := range rows {
			v, err := reopened.Client.Get(tn, k)
			if err != nil || string(v) != want {
				log.Fatalf("metbench: failover+coldstart lost %s/%s: %q, %v", tn, k, v, err)
			}
			total++
		}
	}
	fmt.Printf("failover: OK — %d acknowledged rows verified (replica SSTables + shipped WAL tail), zero loss, layout cold-starts\n", total)
	if jsonOut != "" {
		res := &result{
			Workload: "failover", Ops: ops, Servers: servers, Durable: true,
			GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
			Completed:           int64(total),
			LostWrites:          report.LostWrites,
			LostWritesUnflushed: report2.LostWrites,
			WAL:                 walTotal,
		}
		var repTotal replication.Stats
		for _, rs := range reopened.Master.Servers() {
			repTotal = repTotal.Add(rs.ReplicationStats())
		}
		res.Replication = newReplicationState(repTotal)
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(jsonOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	reopened.Master.HardStop()
}

func runTPCC(cluster *met.Cluster, txs int, seed uint64, res *result) {
	cfg := tpcc.Small()
	cfg.Warehouses = 3
	cfg.Items = 300
	loader := &tpcc.Loader{Cfg: cfg, Client: cluster.Client}
	if err := loader.CreateTables(cluster.Master, 1); err != nil && !errors.Is(err, met.ErrTableExists) {
		log.Fatal(err)
	}
	rows, err := loader.Load()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows (%d warehouses)\n", rows, cfg.Warehouses)
	driver := tpcc.NewDriver(tpcc.NewExecutor(cfg, cluster.Client, sim.NewRNG(seed)))
	fmt.Printf("running %d transactions...\n", txs)
	start := time.Now()
	if err := driver.Run(txs); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	tr := driver.Result()
	fmt.Printf("completed: %d txs (%.1f%% read-only), %d errors\n",
		tr.Total(), 100*tr.ReadOnlyFraction(), tr.Errors)
	res.Completed = int64(tr.Total())
	res.Errors = int64(tr.Errors)
	res.PerOp = make(map[string]int64)
	for _, tx := range []tpcc.TxType{tpcc.TxNewOrder, tpcc.TxPayment, tpcc.TxOrderStatus, tpcc.TxDelivery, tpcc.TxStockLevel} {
		fmt.Printf("  %-13s %d\n", tx, tr.Completed[tx])
		res.PerOp[tx.String()] = int64(tr.Completed[tx])
	}
	res.finish(elapsed)
}
