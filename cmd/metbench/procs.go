package main

import (
	"fmt"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"met"
	"met/internal/hbase"
	"met/internal/rpc"
	"met/internal/sim"
)

// procState records the real OS processes a -procs run drove, for the
// JSON report (CI asserts the count).
type procState struct {
	MasterPID  int            `json:"master_pid"`
	WorkerPIDs map[string]int `json:"worker_pids"`
	Killed     []string       `json:"killed,omitempty"`
}

// child is one spawned metnode process.
type child struct {
	name string
	cmd  *exec.Cmd
	addr string
	done chan error // closed by the reaper with the exit status
}

// spawn starts one metnode and reaps it on exit so kills never leave
// zombies behind.
func spawn(bin string, args ...string) *child {
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		log.Fatalf("metbench: spawn %s %v: %v", bin, args, err)
	}
	c := &child{cmd: cmd, done: make(chan error, 1)}
	go func() { c.done <- cmd.Wait() }()
	return c
}

// kill9 delivers an un-catchable SIGKILL — the real process-death the
// failover path exists for — and waits for the corpse to be reaped.
func (c *child) kill9() {
	_ = c.cmd.Process.Kill()
	<-c.done
}

// terminate asks for a graceful drain and waits briefly.
func (c *child) terminate() {
	_ = c.cmd.Process.Signal(os.Interrupt)
	select {
	case <-c.done:
	case <-time.After(15 * time.Second):
		_ = c.cmd.Process.Kill()
		<-c.done
	}
}

// waitAddrFile polls for a metnode's published address.
func waitAddrFile(path string) string {
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(path); err == nil {
			return strings.TrimSpace(string(b))
		}
		if time.Now().After(deadline) {
			log.Fatalf("metbench: timed out waiting for %s", path)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// waitReady polls a node's readiness probe.
func waitReady(addr string) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			log.Fatalf("metbench: %s never became ready", addr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// findNodeBin resolves the metnode binary: an explicit -node-bin, a
// sibling of this executable, or $PATH.
func findNodeBin(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	if self, err := os.Executable(); err == nil {
		sib := filepath.Join(filepath.Dir(self), "metnode")
		if _, err := os.Stat(sib); err == nil {
			return sib
		}
	}
	if p, err := exec.LookPath("metnode"); err == nil {
		return p
	}
	log.Fatal("metbench: -procs needs the metnode binary (build cmd/metnode and pass -node-bin, or put it next to metbench)")
	return ""
}

// runProcs is the networked multi-process scenario: bootstrap a durable
// cluster in this process, stop it, and restart it as 1 + N real OS
// processes (metnode master + metnode servers) over the RPC layer. The
// bench drives acknowledged writes through the networked client, then
// (with -failover) proves the loss bounds against real process death:
//
//   - Phase A: quiesce replication, kill -9 one worker, quarantine its
//     primary directories AND its WAL (its disk died with it), recover
//     through the master process. Loss must be exactly zero.
//   - Phase B: write a burst and kill -9 a second worker mid-burst with
//     no quiesce. Loss must be bounded by the configured tail-shipping
//     floor: <= 2*tailLag records per dead region.
//
// Any violation exits non-zero, so CI runs this as a per-PR gate.
func runProcs(dataDir string, cfg met.ServerConfig, servers, ops int, seed uint64,
	nodeBin string, doFailover bool, tailLag int, jsonOut string) {
	if servers < 3 {
		fmt.Fprintln(os.Stderr, "metbench: -procs raises -servers to 3 (a victim needs two survivors)")
		servers = 3
	}
	nodeBin = findNodeBin(nodeBin)
	// Small heap so flushes ship real SSTables at bench volumes; the
	// tail floor bounds what the SSTables don't cover. Both land in the
	// catalog and come back to every worker through its manifest.
	cfg.HeapBytes = 1 << 20
	cfg.TailShipMaxLagRecords = tailLag
	cfg.TailShipMaxLagInterval = 50 * time.Millisecond

	// Bootstrap in-process: committed membership, tables, nothing else.
	cluster, err := met.NewClusterConfig(servers, cfg)
	if err != nil {
		log.Fatal(err)
	}
	tables := []string{"orders", "users"}
	splits := map[string][]string{"users": {"g", "p"}, "orders": {"m"}}
	for _, tn := range tables {
		if _, err := cluster.Master.CreateTable(tn, splits[tn]); err != nil {
			log.Fatal(err)
		}
	}
	var names []string
	for _, rs := range cluster.Master.Servers() {
		names = append(names, rs.Name())
	}
	cluster.Master.HardStop()

	// Restart as real processes.
	runDir := filepath.Join(dataDir, "run")
	if err := os.MkdirAll(runDir, 0o755); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("procs: starting 1 master + %d server processes (%s)...\n", servers, nodeBin)
	masterFile := filepath.Join(runDir, "master.addr")
	masterProc := spawn(nodeBin, "-role", "master", "-data", dataDir, "-addr-file", masterFile)
	masterAddr := waitAddrFile(masterFile)
	workers := make(map[string]*child, len(names))
	for _, name := range names {
		f := filepath.Join(runDir, name+".addr")
		workers[name] = spawn(nodeBin, "-role", "server", "-name", name,
			"-master", masterAddr, "-addr-file", f)
		workers[name].name = name
	}
	for _, name := range names {
		workers[name].addr = waitAddrFile(filepath.Join(runDir, name+".addr"))
		waitReady(workers[name].addr)
	}
	defer func() {
		for _, w := range workers {
			if w != nil {
				_ = w.cmd.Process.Kill()
			}
		}
		masterProc.terminate()
	}()
	procs := &procState{MasterPID: masterProc.cmd.Process.Pid, WorkerPIDs: map[string]int{}}
	for name, w := range workers {
		procs.WorkerPIDs[name] = w.cmd.Process.Pid
	}
	fmt.Printf("procs: cluster up — master pid %d, workers %v\n", procs.MasterPID, procs.WorkerPIDs)

	c, err := rpc.Dial(masterAddr)
	if err != nil {
		log.Fatalf("metbench: dial master: %v", err)
	}
	rng := sim.NewRNG(seed)
	acked := make(map[string]map[string]string, len(tables))
	for _, tn := range tables {
		acked[tn] = make(map[string]string)
	}
	write := func(n int, tag string) {
		for i := 0; i < n; i++ {
			tn := tables[rng.Intn(len(tables))]
			key := fmt.Sprintf("%c%07x", byte('a'+rng.Intn(26)), rng.Uint64()&0xfffffff)
			val := fmt.Sprintf("%s/%s/%s%d", tn, key, tag, i)
			if err := c.Put(tn, key, []byte(val)); err != nil {
				log.Fatalf("metbench: procs put %s/%s: %v", tn, key, err)
			}
			acked[tn][key] = val
		}
	}
	verify := func(phase string) int {
		missing := 0
		for tn, rows := range acked {
			for k, want := range rows {
				v, err := c.Get(tn, k)
				if err != nil || string(v) != want {
					missing++
				}
			}
		}
		fmt.Printf("procs: %s — %d acked rows, %d missing\n", phase, ackedCount(acked), missing)
		return missing
	}

	fmt.Printf("procs: writing %d rows over RPC across %d worker processes...\n", ops, servers)
	write(ops, "v")
	if miss := verify("after load"); miss != 0 {
		log.Fatalf("metbench: procs lost %d rows with every process alive", miss)
	}

	if !doFailover {
		fmt.Printf("procs: OK — %d rows via %d processes\n", ackedCount(acked), servers+1)
		writeProcsResult(jsonOut, ops, servers, procs, 0, 0, acked)
		return
	}

	// Phase A: quiesced kill. After the replication barrier the replicas
	// (SSTables + shipped WAL tail) cover every acknowledged write, so a
	// process death plus total disk loss must cost nothing.
	if err := c.Quiesce(); err != nil {
		log.Fatalf("metbench: procs quiesce: %v", err)
	}
	victim := victimOf(c, "")
	fmt.Printf("procs: phase A — kill -9 %s (pid %d) after quiesce, quarantining its disk...\n",
		victim, workers[victim].cmd.Process.Pid)
	workers[victim].kill9()
	quarantineProc(c, dataDir, victim)
	workers[victim] = nil
	procs.Killed = append(procs.Killed, victim)
	replyA, err := c.Recover(victim)
	if err != nil {
		log.Fatalf("metbench: procs recover %s: %v", victim, err)
	}
	for _, rr := range replyA.Regions {
		fmt.Printf("procs: %s -> %s on %s (%d replica SSTables, %d tail records)\n",
			rr.Spec.Region, rr.Spec.NewRegion, rr.Spec.Source, rr.Report.ReplicaFiles, rr.Report.TailWrites)
	}
	if miss := verify("after quiesced kill"); miss != 0 {
		log.Fatalf("metbench: procs phase A lost %d acknowledged writes after a quiesce — must be exactly zero", miss)
	}

	// Phase B: mid-burst kill, no quiesce. The tail floor is the only
	// bound: each dead region may lose at most ~2*tailLag acknowledged
	// records (one floor window in flight plus one accruing).
	hotOps := ops
	fmt.Printf("procs: phase B — %d-row burst, then kill -9 mid-burst with no quiesce...\n", hotOps)
	write(hotOps, "hot")
	victim2 := victimOf(c, victim)
	deadRegions := regionsOn(c, victim2)
	fmt.Printf("procs: kill -9 %s (pid %d, %d regions), quarantining its disk...\n",
		victim2, workers[victim2].cmd.Process.Pid, deadRegions)
	workers[victim2].kill9()
	quarantineProc(c, dataDir, victim2)
	workers[victim2] = nil
	procs.Killed = append(procs.Killed, victim2)
	replyB, err := c.Recover(victim2)
	if err != nil {
		log.Fatalf("metbench: procs recover %s: %v", victim2, err)
	}
	for _, rr := range replyB.Regions {
		fmt.Printf("procs: %s -> %s on %s (%d replica SSTables, %d tail records, recovered ts %d)\n",
			rr.Spec.Region, rr.Spec.NewRegion, rr.Spec.Source,
			rr.Report.ReplicaFiles, rr.Report.TailWrites, rr.Report.RecoveredTS)
	}
	missing := verify("after mid-burst kill")
	bound := 2 * tailLag * deadRegions
	if missing > bound {
		log.Fatalf("metbench: procs phase B lost %d acknowledged writes; the tail floor bounds loss to %d (2*%d records x %d regions)",
			missing, bound, tailLag, deadRegions)
	}
	// The cluster keeps serving on the survivors.
	if err := c.Put("users", "zz-post-failover", []byte("alive")); err != nil {
		log.Fatalf("metbench: procs cluster dead after recovery: %v", err)
	}
	fmt.Printf("procs: OK — quiesced kill lost 0, mid-burst kill lost %d <= %d bound, %d processes driven, 2 killed\n",
		missing, bound, servers+1)
	writeProcsResult(jsonOut, ops, servers, procs, 0, missing, acked)
}

// ackedCount sums the acknowledged-row map.
func ackedCount(acked map[string]map[string]string) int {
	n := 0
	for _, rows := range acked {
		n += len(rows)
	}
	return n
}

// victimOf picks the live worker hosting the most regions (skipping an
// already-dead one), from the client's view of the layout.
func victimOf(c *rpc.Client, dead string) string {
	if err := c.Refresh(); err != nil {
		log.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range c.Regions() {
		if r.Server != dead {
			counts[r.Server]++
		}
	}
	victim, best := "", -1
	for s, n := range counts {
		if n > best || (n == best && s < victim) {
			victim, best = s, n
		}
	}
	if victim == "" {
		log.Fatal("metbench: no live worker to kill")
	}
	return victim
}

// regionsOn counts the regions the layout places on one worker.
func regionsOn(c *rpc.Client, server string) int {
	n := 0
	for _, r := range c.Regions() {
		if r.Server == server {
			n++
		}
	}
	return n
}

// quarantineProc renames a dead worker's primary region directories and
// WAL away — its disk died with the process — so recovery provably
// runs from the surviving replicas alone.
func quarantineProc(c *rpc.Client, dataDir, dead string) {
	for _, r := range c.Regions() {
		if r.Server != dead {
			continue
		}
		dir := hbase.RegionDataDir(dataDir, r.Name)
		if _, err := os.Stat(dir); err == nil {
			if err := os.Rename(dir, dir+".quarantine"); err != nil {
				log.Fatal(err)
			}
		}
	}
	w := hbase.ServerWALDir(dataDir, dead)
	if _, err := os.Stat(w); err == nil {
		if err := os.Rename(w, w+".quarantine"); err != nil {
			log.Fatal(err)
		}
	}
}

// writeProcsResult emits the machine-readable report.
func writeProcsResult(jsonOut string, ops, servers int, procs *procState,
	lostQuiesced, lostBurst int, acked map[string]map[string]string) {
	if jsonOut == "" {
		return
	}
	res := &result{
		Workload: "procs", Ops: ops, Servers: servers, Durable: true,
		GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Completed:           int64(ackedCount(acked)),
		LostWrites:          int64(lostQuiesced),
		LostWritesUnflushed: int64(lostBurst),
		Procs:               procs,
	}
	writeResultJSON(jsonOut, res)
}
