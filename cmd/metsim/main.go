// Command metsim regenerates the paper's evaluation: every table and
// figure of "MeT: workload aware elasticity for NoSQL" (EuroSys 2013),
// reproduced on the simulated deployment.
//
// Usage:
//
//	metsim -exp fig1|fig4|table2|fig5|fig6|all [-runs N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	"met"
	"met/internal/perfmodel"
)

func main() {
	expName := flag.String("exp", "all", "experiment: fig1, fig4, table2, fig5, fig6, elasticity, all")
	runs := flag.Int("runs", 5, "runs per strategy for fig1 (the paper uses 5)")
	seed := flag.Uint64("seed", 1, "deterministic experiment seed")
	calibrate := flag.String("calibrate", "",
		"metbench BENCH_*.json artifact: override the performance model's cost constants with the measured durable fsync/SSTable costs before running")
	flag.Parse()

	out := os.Stdout
	if *calibrate != "" {
		cm, rep, err := perfmodel.CalibrateFromFile(perfmodel.DefaultCostModel(), *calibrate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metsim: calibrate: %v\n", err)
			os.Exit(1)
		}
		perfmodel.SetDefaultCostModel(cm)
		rep.Print(out)
	}
	switch *expName {
	case "fig1":
		met.RunFigure1(*runs, *seed).Print(out)
	case "fig4":
		met.RunFigure4(*seed).Print(out)
	case "table2":
		met.RunTable2(*seed).Print(out)
	case "fig5", "fig6", "elasticity":
		met.RunElasticity(*seed).Print(out)
	case "all":
		met.PrintAll(out, *seed)
	default:
		fmt.Fprintf(os.Stderr, "metsim: unknown experiment %q\n", *expName)
		flag.Usage()
		os.Exit(2)
	}
}
