// Command metnode runs ONE cluster process: either the layout master
// (the catalog owner and failover orchestrator) or a single region
// server, each serving its half of the met/internal/rpc protocol. A
// networked cluster is one master plus N server processes over a
// shared data directory:
//
//	metnode -role master -data DIR [-addr 127.0.0.1:0] [-addr-file F]
//	metnode -role server -name rs0 -data DIR -master HOST:PORT
//	        [-addr 127.0.0.1:0] [-addr-file F]
//
// The data directory must already hold a bootstrapped cluster (a META
// catalog with committed membership — `metbench -durable DIR` or any
// durable run creates one). The master process opens the catalog
// exclusively; server processes never touch it, fetching their
// manifest (config, assigned regions, routing epoch) from the master
// over RPC instead, so exactly one process owns each WAL.
//
// With -addr-file the process writes its bound address (host:port,
// one line) to the file once it is serving — listeners default to
// port 0, so parents discover the chosen port by reading the file.
// SIGINT/SIGTERM drain gracefully: in-flight requests finish, the
// readiness probe flips to 503, and the engine shuts down cleanly.
// SIGKILL is the failure mode the cluster is built to survive.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"met/internal/hbase"
	"met/internal/rpc"
)

func main() {
	role := flag.String("role", "", "process role: master or server")
	name := flag.String("name", "", "this region server's catalog name (role=server)")
	data := flag.String("data", "", "cluster data directory (role=master)")
	master := flag.String("master", "", "master address host:port (role=server)")
	addr := flag.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address here once serving")
	verbose := flag.Bool("v", false, "log every RPC request (one line each) to stderr")
	flag.Parse()

	logw := io.Writer(io.Discard)
	if *verbose {
		logw = os.Stderr
	}
	switch *role {
	case "master":
		if *data == "" {
			log.Fatal("metnode: -role master requires -data DIR")
		}
		runMaster(*data, *addr, *addrFile, logw)
	case "server":
		if *name == "" || *master == "" {
			log.Fatal("metnode: -role server requires -name NAME and -master ADDR")
		}
		runServer(*name, *master, *addr, *addrFile, logw)
	default:
		log.Fatal("metnode: -role must be master or server")
	}
}

// runMaster owns the catalog and serves the control plane until a
// termination signal drains it.
func runMaster(dataDir, addr, addrFile string, logw io.Writer) {
	lm, err := hbase.OpenLayoutMaster(dataDir)
	if err != nil {
		log.Fatalf("metnode: open layout master: %v", err)
	}
	node := rpc.NewMasterNode(lm, logw)
	if err := node.Serve(addr); err != nil {
		log.Fatalf("metnode: serve: %v", err)
	}
	writeAddrFile(addrFile, node.Addr())
	log.Printf("metnode: master serving on %s (%d servers in catalog)", node.Addr(), len(lm.ServerNames()))

	waitSignal()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = node.Drain(ctx)
	node.Close()
	lm.Close()
}

// runServer fetches its manifest from the master, opens its regions
// (WAL replay and all), serves the data plane, and announces its bound
// address back so clients can route to it.
func runServer(name, masterAddr, addr, addrFile string, logw io.Writer) {
	// Phase one: manifest only (empty address — we cannot serve before
	// the regions are open). The master may still be binding; retry.
	var man hbase.NodeManifest
	if err := register(masterAddr, name, "", &man); err != nil {
		log.Fatalf("metnode: register with master %s: %v", masterAddr, err)
	}
	rs, err := hbase.OpenServerNode(man)
	if err != nil {
		log.Fatalf("metnode: open server node %s: %v", name, err)
	}
	node := rpc.NewServerNode(rs, man.Epoch, logw)
	if err := node.Serve(addr); err != nil {
		log.Fatalf("metnode: serve: %v", err)
	}
	// Phase two: announce the bound address; from here the master can
	// route recovery work (adoptions, epoch pushes) at this process.
	if err := register(masterAddr, name, node.Addr(), &man); err != nil {
		log.Fatalf("metnode: announce address: %v", err)
	}
	writeAddrFile(addrFile, node.Addr())
	log.Printf("metnode: %s serving on %s (%d regions, epoch %d)",
		name, node.Addr(), rs.NumRegions(), man.Epoch)

	waitSignal()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = node.Drain(ctx)
	node.Close()
	rs.Shutdown()
}

// register posts one /master/register call, retrying while the master
// is still coming up (connection refused), and decodes the manifest.
func register(masterAddr, name, boundAddr string, man *hbase.NodeManifest) error {
	body, _ := json.Marshal(map[string]string{"server": name, "addr": boundAddr})
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Post("http://"+masterAddr+"/master/register",
			"application/json", bytes.NewReader(body))
		if err == nil {
			payload, rerr := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
			resp.Body.Close()
			if rerr != nil {
				return rerr
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("register %s: %s: %s", name, resp.Status, payload)
			}
			return json.Unmarshal(payload, man)
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// writeAddrFile publishes the bound address atomically (write-then-
// rename), so a polling parent never reads a half-written file.
func writeAddrFile(path, addr string) {
	if path == "" {
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		log.Fatalf("metnode: write addr file: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		log.Fatalf("metnode: publish addr file: %v", err)
	}
}

// waitSignal blocks until SIGINT or SIGTERM.
func waitSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	<-ch
}
