// metlint is the project's static-analysis gate: five analyzers
// (locksafe, atomicfield, nolockcopy, syncerr, crashpoint) enforcing
// the engine's concurrency and durability invariants. See
// internal/analysis and the per-analyzer package docs.
//
// It runs in two modes:
//
//	go vet -vettool=$(command -v metlint) ./...
//
// drives it through the go command's unitchecker protocol (the -V /
// -flags handshake followed by one *.cfg JSON file per package, with
// export data supplied by the build cache). This is how CI invokes
// it, and how it analyzes test variants of each package (which the
// crashpoint analyzer needs).
//
//	metlint [packages]
//
// is the standalone mode: it shells out to `go list -export` to load
// the same export data and analyzes every listed package in-process,
// defaulting to ./... — convenient during development.
//
// Exit status: 0 clean, 1 tool/typecheck error, 2 findings.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"met/internal/analysis"
	"met/internal/analysis/atomicfield"
	"met/internal/analysis/crashpoint"
	"met/internal/analysis/locksafe"
	"met/internal/analysis/nolockcopy"
	"met/internal/analysis/syncerr"
)

var analyzers = []*analysis.Analyzer{
	locksafe.Analyzer,
	atomicfield.Analyzer,
	nolockcopy.Analyzer,
	syncerr.Analyzer,
	crashpoint.Analyzer,
}

func main() {
	args := os.Args[1:]

	// The go command's vettool handshake: it first asks the tool to
	// identify itself (-V=full) and to enumerate its flags (-flags),
	// then invokes it once per package with a *.cfg file.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			// The exact shape cmd/go's toolID parser accepts for an
			// unstamped binary.
			fmt.Printf("%s version devel comments-go-here buildID=gibberish\n",
				filepath.Base(os.Args[0]))
			return
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		case args[0] == "help":
			usage()
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(unitcheckerMain(args[0]))
		}
	}

	os.Exit(standaloneMain(args))
}

func usage() {
	fmt.Printf("metlint: static analysis for the met engine\n\nAnalyzers:\n")
	for _, a := range analyzers {
		fmt.Printf("  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Printf("\nUsage:\n  metlint [packages]            (standalone, default ./...)\n" +
		"  go vet -vettool=metlint ./... (unitchecker mode)\n\n" +
		"Suppress one diagnostic with: //lint:allow <analyzer> <reason>\n")
}

// printFindings renders findings the way vet does, one per line.
func printFindings(findings []analysis.Finding) {
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
	}
}
