package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"met/internal/analysis"
)

// listedPackage is the slice of `go list -json` output the
// standalone driver needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	ForTest    string
	DepOnly    bool
}

// standaloneMain loads packages via `go list -export` and analyzes
// every package of this module, preferring the test variant of a
// package (production + test files) when one exists so crashpoint
// sees test coverage.
func standaloneMain(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps", "-test",
		"-json=ImportPath,Dir,Export,GoFiles,ImportMap,ForTest,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "metlint: go list: %v\n", err)
		return 1
	}

	exportOf := map[string]string{}
	var pkgs []*listedPackage
	hasTestVariant := map[string]bool{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "metlint: decoding go list output: %v\n", err)
			return 1
		}
		if p.Export != "" {
			exportOf[p.ImportPath] = p.Export
		}
		pkgs = append(pkgs, &p)
		if p.ForTest != "" && !strings.HasSuffix(p.ImportPath, ".test") {
			hasTestVariant[p.ForTest] = true
		}
	}

	exit := 0
	for _, p := range pkgs {
		if !analyzable(p, hasTestVariant) {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			if !filepath.IsAbs(f) {
				f = filepath.Join(p.Dir, f)
			}
			files[i] = f
		}
		pkg, err := loadFromExportData(p.ImportPath, "", files,
			func(path string) (io.ReadCloser, error) {
				if mapped, ok := p.ImportMap[path]; ok {
					path = mapped
				}
				file, ok := exportOf[path]
				if !ok {
					return nil, fmt.Errorf("no export data for %q", path)
				}
				return os.Open(file)
			})
		if err != nil {
			fmt.Fprintf(os.Stderr, "metlint: %s: %v\n", p.ImportPath, err)
			exit = 1
			continue
		}
		findings, err := analysis.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metlint: %s: %v\n", p.ImportPath, err)
			exit = 1
			continue
		}
		if len(findings) > 0 {
			printFindings(findings)
			if exit == 0 {
				exit = 2
			}
		}
	}
	return exit
}

// analyzable selects this module's real packages: skip dependencies
// outside the module, generated .test binaries, and the plain
// variant of any package that also has a test variant (the variant's
// file set is a superset).
func analyzable(p *listedPackage, hasTestVariant map[string]bool) bool {
	if p.DepOnly || len(p.GoFiles) == 0 {
		return false
	}
	ip := p.ImportPath
	if ip != "met" && !strings.HasPrefix(ip, "met/") {
		return false
	}
	if strings.HasSuffix(ip, ".test") {
		return false // generated test main
	}
	if p.ForTest == "" && hasTestVariant[ip] {
		return false // superseded by its test variant
	}
	return true
}
