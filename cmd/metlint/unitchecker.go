package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"met/internal/analysis"
)

// vetConfig mirrors the JSON the go command writes for -vettool
// tools (cmd/go/internal/work's vetConfig). Fields we don't use are
// kept so the decoder stays strict-compatible with future additions.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheckerMain analyzes the single package described by cfgPath.
// The go command supplies export data for every dependency through
// PackageFile, so no build work happens here.
func unitcheckerMain(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "metlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command requires the facts file to exist after every
	// run (it is cached like an object file). Our analyzers are
	// fact-free, so an empty file is a complete answer — and for
	// VetxOnly runs (dependency packages) it is all that is needed.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "metlint: %v\n", err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	pkg, err := loadFromExportData(cfg.ImportPath, cfg.GoVersion, cfg.GoFiles,
		func(path string) (io.ReadCloser, error) {
			if mapped, ok := cfg.ImportMap[path]; ok {
				path = mapped
			}
			file, ok := cfg.PackageFile[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		})
	if err != nil {
		writeVetx()
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "metlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	findings, err := analysis.RunPackage(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	writeVetx()
	if len(findings) > 0 {
		printFindings(findings)
		return 2
	}
	return 0
}

// loadFromExportData parses and typechecks one package whose
// dependencies are available as gc export data through lookup.
func loadFromExportData(importPath, goVersion string, goFiles []string,
	lookup func(string) (io.ReadCloser, error)) (*analysis.Package, error) {

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := analysis.NewInfo()
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: goVersion,
	}
	// Test variants carry their variant suffix in the import path;
	// the type-checker wants the plain path.
	path := importPath
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &analysis.Package{Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
