// Quickstart: stand up a functional mini-HBase cluster, write and read
// data through the public API, and inspect the cluster state MeT's
// monitor would see.
package main

import (
	"fmt"
	"log"

	"met"
)

func main() {
	// A 3-server cluster (each server is co-located with a simulated
	// HDFS datanode; replication factor 2).
	cluster, err := met.NewCluster(3)
	if err != nil {
		log.Fatal(err)
	}

	// A table pre-split into 3 regions: ["", "h"), ["h", "p"), ["p", "").
	if err := cluster.CreateTable("users", []string{"h", "p"}); err != nil {
		log.Fatal(err)
	}

	// Writes are atomic and immediately visible.
	users := map[string]string{
		"alice": "alice@example.com",
		"homer": "homer@example.com",
		"zoe":   "zoe@example.com",
	}
	for k, v := range users {
		if err := cluster.Put("users", k, []byte(v)); err != nil {
			log.Fatal(err)
		}
	}

	v, err := cluster.Get("users", "homer")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get homer -> %s\n", v)

	// Scans stitch regions together transparently.
	keys, _, err := cluster.Scan("users", "", "", -1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scan -> %v\n", keys)

	// Deletes write tombstones that shadow older versions.
	if err := cluster.Delete("users", "zoe"); err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.Get("users", "zoe"); err != nil {
		fmt.Printf("get zoe after delete -> %v\n", err)
	}

	// The cluster state MeT monitors: region placement per server.
	for _, rs := range cluster.Master.Servers() {
		fmt.Printf("server %s: %d regions, locality %.2f, config [%s]\n",
			rs.Name(), rs.NumRegions(), rs.Locality(), rs.Config())
	}
}
