// Elasticity: reproduce the paper's headline comparison — MeT against a
// Tiramola-style system-metrics-only autoscaler — on the simulated
// deployment, and print the Figure 5/6 series.
package main

import (
	"fmt"
	"os"

	"met"
)

func main() {
	fmt.Println("Running the elasticity experiment (MeT vs Tiramola, 60 virtual minutes each)...")
	fmt.Println()
	res := met.RunElasticity(11)
	res.Print(os.Stdout)

	fmt.Println()
	fmt.Println("What to look for (Section 6.4 of the paper):")
	fmt.Println("  - During phase 1 (overload) MeT's heterogeneous reconfiguration pays off")
	fmt.Println("    after its initial cost, while Tiramola's added nodes barely help because")
	fmt.Println("    random rebalancing destroys data locality and nodes stay misconfigured.")
	fmt.Println("  - In phase 2, tenants switch off one by one; MeT sheds nodes, Tiramola")
	fmt.Println("    cannot shed any while a single node stays busy.")
}
