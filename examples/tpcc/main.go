// TPC-C: load a small TPC-C database onto the functional cluster and run
// the five transaction types through the standard mix, reporting the
// result counters — the workload behind the paper's Table 2.
package main

import (
	"fmt"
	"log"

	"met"
	"met/internal/sim"
	"met/internal/tpcc"
)

func main() {
	cluster, err := met.NewCluster(3)
	if err != nil {
		log.Fatal(err)
	}

	cfg := tpcc.Config{
		Warehouses:           3,
		DistrictsPerWH:       4,
		CustomersPerDistrict: 60,
		Items:                500,
		InitialOrdersPerDist: 30,
		ValueFiller:          64,
	}
	loader := &tpcc.Loader{Cfg: cfg, Client: cluster.Client}
	if err := loader.CreateTables(cluster.Master, 1); err != nil {
		log.Fatal(err)
	}
	rows, err := loader.Load()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows across %d tables, %d warehouses\n", rows, len(tpcc.Tables), cfg.Warehouses)

	exec := tpcc.NewExecutor(cfg, cluster.Client, sim.NewRNG(7))
	driver := tpcc.NewDriver(exec)
	const txCount = 2000
	if err := driver.Run(txCount); err != nil {
		log.Fatal(err)
	}

	res := driver.Result()
	fmt.Printf("executed %d transactions (%.1f%% read-only)\n", res.Total(), 100*res.ReadOnlyFraction())
	for _, tx := range []tpcc.TxType{tpcc.TxNewOrder, tpcc.TxPayment, tpcc.TxOrderStatus, tpcc.TxDelivery, tpcc.TxStockLevel} {
		fmt.Printf("  %-13s %6d\n", tx, res.Completed[tx])
	}
	// tpmC over a nominal 10-minute window at this transaction count.
	fmt.Printf("tpmC over a 10-minute window: %.0f\n", tpcc.TpmC(res.NewOrders(), 10*sim.Minute))
}
