// Multitenant: run the paper's six YCSB workloads against a functional
// cluster managed by MeT, and watch the controller classify partitions
// and reconfigure nodes heterogeneously — the Section 3 scenario end to
// end on real data paths.
package main

import (
	"fmt"
	"log"

	"met"
	"met/internal/hbase"
	"met/internal/sim"
	"met/internal/ycsb"
)

func main() {
	cluster, err := met.NewCluster(5)
	if err != nil {
		log.Fatal(err)
	}

	// The six paper workloads, shrunk to example scale.
	rng := sim.NewRNG(42)
	var runners []*ycsb.Runner
	for _, w := range ycsb.PaperWorkloads() {
		w.RecordCount = 3000
		if w.Name == "D" {
			w.RecordCount = 300
		}
		w.FieldLengthBytes = 64
		r, err := ycsb.NewRunner(w, cluster.Client, rng.Split())
		if err != nil {
			log.Fatal(err)
		}
		if err := r.CreateTable(cluster.Master); err != nil {
			log.Fatal(err)
		}
		if err := r.Load(0); err != nil {
			log.Fatal(err)
		}
		runners = append(runners, r)
	}
	fmt.Println("loaded 6 tenants")

	// MeT over the cluster: nominal capacity tuned so this example's
	// load reads as heavy.
	params := met.DefaultParams()
	params.MinSamples = 2
	params.MinNodes = 5
	params.MaxNodes = 5
	ctrl := met.NewController(cluster, params, 40)

	// Prime the monitor so the bulk-load writes above do not count as
	// workload traffic, then interleave load with monitoring samples
	// (30 virtual seconds per round).
	ctrl.Tick(0)
	ctrl.Monitor.Reset()
	now := 30 * sim.Second
	for round := 0; round < 6; round++ {
		for _, r := range runners {
			if err := r.Run(400); err != nil {
				log.Fatal(err)
			}
		}
		ctrl.Tick(now)
		now += 30 * sim.Second
	}
	if err := ctrl.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decisions: %d, actuations: %d\n", ctrl.Decisions(), ctrl.Actuations())

	// The cluster is now heterogeneous: print each node's profile and
	// the tenants it serves.
	for _, rs := range cluster.Master.Servers() {
		tables := map[string]bool{}
		for _, r := range rs.Regions() {
			tables[r.Table()] = true
		}
		var names []string
		for t := range tables {
			names = append(names, t)
		}
		fmt.Printf("%s [%s] serves %v\n", rs.Name(), rs.Config(), names)
	}

	// Data still fully available after all the rolling reconfigs.
	total := int64(0)
	for _, r := range runners {
		total += r.TotalCompleted()
	}
	fmt.Printf("completed %d operations with 0 errors\n", total)
	_ = hbase.DefaultServerConfig() // keep the import for doc purposes
}
