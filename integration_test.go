package met

import (
	"fmt"
	"testing"

	"met/internal/core"
	"met/internal/hbase"
	"met/internal/placement"
	"met/internal/sim"
	"met/internal/tpcc"
	"met/internal/ycsb"
)

// TestIntegrationYCSBUnderMeT drives the six paper workloads against the
// functional cluster while MeT reconfigures it, with automatic region
// splits enabled — the full functional stack in one scenario.
func TestIntegrationYCSBUnderMeT(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack workload run")
	}
	cluster, err := NewCluster(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(99)
	var runners []*ycsb.Runner
	for _, w := range ycsb.PaperWorkloads() {
		w.RecordCount = 1500
		if w.Name == "D" {
			w.RecordCount = 200
		}
		w.FieldLengthBytes = 48
		r, err := ycsb.NewRunner(w, cluster.Client, rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		if err := r.CreateTable(cluster.Master); err != nil {
			t.Fatal(err)
		}
		if err := r.Load(0); err != nil {
			t.Fatal(err)
		}
		runners = append(runners, r)
	}

	params := DefaultParams()
	params.MinSamples = 2
	params.MinNodes = 5
	params.MaxNodes = 5
	ctrl := NewController(cluster, params, 8)
	ctrl.Tick(0) // prime: absorb the bulk-load counters
	ctrl.Monitor.Reset()

	now := 30 * sim.Second
	for round := 0; round < 5; round++ {
		for _, r := range runners {
			if err := r.Run(300); err != nil {
				t.Fatal(err)
			}
		}
		// Splits interleave with controller decisions.
		cluster.Master.AutoSplit(256 << 10)
		ctrl.Tick(now)
		now += 30 * sim.Second
	}
	if err := ctrl.Err(); err != nil {
		t.Fatal(err)
	}
	if ctrl.Actuations() == 0 {
		t.Fatal("MeT never actuated")
	}
	// Cluster heterogeneous, data intact, every op still served.
	configs := map[string]bool{}
	for _, rs := range cluster.Master.Servers() {
		configs[rs.Config().String()] = true
	}
	if len(configs) < 2 {
		t.Fatal("cluster still homogeneous")
	}
	for _, r := range runners {
		if err := r.Run(100); err != nil {
			t.Fatalf("post-reconfig traffic failed: %v", err)
		}
		if r.Errors() != 0 {
			t.Fatalf("workload saw %d errors", r.Errors())
		}
	}
	// At least one table actually split.
	split := false
	for _, name := range cluster.Master.Tables() {
		tbl, _ := cluster.Master.Table(name)
		w := wByTable(name)
		if w != nil && tbl.NumRegions() > w.Partitions {
			split = true
		}
	}
	if !split {
		t.Log("note: no table exceeded the split threshold in this run")
	}
}

func wByTable(table string) *ycsb.Workload {
	for _, w := range ycsb.PaperWorkloads() {
		if w.TableName() == table {
			w := w
			return &w
		}
	}
	return nil
}

// TestIntegrationTPCCSurvivesReconfiguration runs TPC-C transactions
// while the actuator restarts servers under it.
func TestIntegrationTPCCSurvivesReconfiguration(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack workload run")
	}
	cluster, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tpcc.Small()
	loader := &tpcc.Loader{Cfg: cfg, Client: cluster.Client}
	if err := loader.CreateTables(cluster.Master, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load(); err != nil {
		t.Fatal(err)
	}
	exec := tpcc.NewExecutor(cfg, cluster.Client, sim.NewRNG(5))
	driver := tpcc.NewDriver(exec)

	if err := driver.Run(200); err != nil {
		t.Fatal(err)
	}
	// Reconfigure every server to a different profile mid-benchmark
	// (the functional actuator's rolling restart would interleave; here
	// we exercise the restart path directly between batches).
	profiles := Table1Profiles()
	for i, rs := range cluster.Master.Servers() {
		ty := []AccessType{Read, Write, ReadWrite}[i%3]
		if err := rs.Restart(profiles[ty]); err != nil {
			t.Fatal(err)
		}
		if err := driver.Run(100); err != nil {
			t.Fatalf("transactions failed after restarting %s: %v", rs.Name(), err)
		}
	}
	res := driver.Result()
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Total() != 200+3*100 {
		t.Fatalf("total = %d", res.Total())
	}
}

// TestIntegrationLocalityLifecycle verifies the full locality story the
// paper's mechanism depends on: local writes -> move degrades -> major
// compact restores, as observed through the server's own index.
func TestIntegrationLocalityLifecycle(t *testing.T) {
	cluster, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	// Write enough to flush files to HDFS.
	for i := 0; i < 3000; i++ {
		if err := cluster.Put("t", fmt.Sprintf("k%05d", i), make([]byte, 2048)); err != nil {
			t.Fatal(err)
		}
	}
	tbl, _ := cluster.Master.Table("t")
	region := tbl.RegionNames()[0]
	host, _ := cluster.Master.HostOf(region)
	rs, _ := cluster.Master.Server(host)
	tbl.Regions()[0].Store().Flush()
	cluster.Put("t", "flush-mirror", []byte("x")) // mirrors the flush into HDFS
	if rs.Locality() < 0.99 {
		t.Fatalf("writer locality = %v", rs.Locality())
	}
	// Move twice around the cluster: locality on the final host is low.
	var hosts []string
	for _, s := range cluster.Master.Servers() {
		if s.Name() != host {
			hosts = append(hosts, s.Name())
		}
	}
	for _, dst := range hosts[:2] {
		if err := cluster.Master.MoveRegion(region, dst); err != nil {
			t.Fatal(err)
		}
	}
	final, _ := cluster.Master.Server(hosts[1])
	// Compact restores locality; data remains correct throughout.
	if _, err := final.MajorCompact(region); err != nil {
		t.Fatal(err)
	}
	if final.Locality() < 0.99 {
		t.Fatalf("post-compact locality = %v", final.Locality())
	}
	v, err := cluster.Get("t", "k00042")
	if err != nil || len(v) != 2048 {
		t.Fatalf("data damaged by moves/compaction: %v", err)
	}
}

// TestIntegrationDecisionMakerOnFunctionalCounters checks that the
// classification the Decision Maker computes from *real* measured
// counters matches the workloads' declared natures.
func TestIntegrationDecisionMakerOnFunctionalCounters(t *testing.T) {
	cluster, _ := NewCluster(2)
	for _, tbl := range []string{"readonly", "writeonly"} {
		if err := cluster.CreateTable(tbl, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("k%03d", i)
		cluster.Put("writeonly", k, []byte("v"))
		if i == 0 {
			cluster.Put("readonly", k, []byte("v"))
		}
		cluster.Get("readonly", "k000")
		cluster.Get("readonly", "k000")
	}
	src := core.NewClusterSource(cluster.Master, 50, 30*sim.Second)
	mon := core.NewMonitor(src, 0.5)
	mon.Poll(0)
	view := mon.View()
	var readType, writeType AccessType
	params := DefaultParams()
	for _, p := range view.Partitions {
		ty := placement.Classify(p.Requests, params.Classify)
		switch {
		case len(p.Name) >= 8 && p.Name[:8] == "readonly":
			readType = ty
		case len(p.Name) >= 9 && p.Name[:9] == "writeonly":
			writeType = ty
		}
	}
	if readType != Read {
		t.Errorf("readonly table classified %v", readType)
	}
	if writeType != Write {
		t.Errorf("writeonly table classified %v", writeType)
	}
	_ = hbase.DefaultServerConfig()
}
