package met

import (
	"fmt"
	"io"
	"sync/atomic"
	"testing"

	"met/internal/exp"
	"met/internal/metrics"
	"met/internal/placement"
	"met/internal/sim"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Each bench reports
// the headline quantities as custom metrics so `bench_output.txt` doubles
// as the reproduction record; EXPERIMENTS.md interprets them against the
// paper's numbers. Absolute simulator throughputs differ from the
// authors' physical testbed; the shapes — who wins and by what factor —
// are the reproduction targets.

// BenchmarkFig1ManualStrategies regenerates Figure 1: the three
// placement/configuration strategies under the six YCSB workloads,
// percentiles over 5 runs.
func BenchmarkFig1ManualStrategies(b *testing.B) {
	var r *Figure1
	for i := 0; i < b.N; i++ {
		r = RunFigure1(5, 1)
	}
	het := r.Summary[exp.ManualHeterogeneous]["Total"].P50
	hom := r.Summary[exp.ManualHomogeneous]["Total"].P50
	rnd := r.Summary[exp.RandomHomogeneous]["Total"]
	b.ReportMetric(het, "het-p50-ops/s")
	b.ReportMetric(hom, "hom-p50-ops/s")
	b.ReportMetric(rnd.P50, "rnd-p50-ops/s")
	b.ReportMetric(het/hom, "het/hom(paper~1.35)")
	b.ReportMetric((rnd.P90-rnd.P5)/rnd.P50, "rnd-spread")
	r.Print(io.Discard)
}

// BenchmarkFig4Convergence regenerates Figure 4: MeT reconfiguring a
// Random-Homogeneous cluster on the fly.
func BenchmarkFig4Convergence(b *testing.B) {
	var r *Figure4
	for i := 0; i < b.N; i++ {
		r = RunFigure4(42)
	}
	var tailMeT, tailHet float64
	for i := 25; i < 30; i++ {
		tailMeT += r.MeT[i] / 5
		tailHet += r.ManualHet[i] / 5
	}
	b.ReportMetric(tailMeT/tailHet, "met/het-final(paper~1.0)")
	b.ReportMetric(r.MinDuringReconfig, "trough-ops/s(paper~7500)")
	b.ReportMetric(r.ReconfigEnd.Minutes()-r.ReconfigStart.Minutes(), "window-min(paper~6)")
}

// BenchmarkTable2TPCC regenerates Table 2: PyTPCC tpmC under the three
// settings.
func BenchmarkTable2TPCC(b *testing.B) {
	var r *Table2
	for i := 0; i < b.N; i++ {
		r = RunTable2(7)
	}
	b.ReportMetric(r.ManualHomogeneous, "tpmC-manual(paper=25380)")
	b.ReportMetric(r.MeTWithReconfig, "tpmC-met(paper=31020)")
	b.ReportMetric(r.MeTNoReconfig, "tpmC-met-clean(paper=33720)")
	b.ReportMetric(100*(1-r.MeTWithReconfig/r.MeTNoReconfig), "overhead-%(paper=8)")
}

// BenchmarkFig5Cumulative regenerates Figure 5: cumulative operations
// after the 33-minute overload phase, MeT vs Tiramola.
func BenchmarkFig5Cumulative(b *testing.B) {
	var r *Elasticity
	for i := 0; i < b.N; i++ {
		r = RunElasticity(11)
	}
	p1 := int(r.Phase1End/sim.Minute) - 1
	met := r.MeT.CumulativeOps[p1]
	tira := r.Tiramola.CumulativeOps[p1]
	b.ReportMetric(met/1e6, "met-Mops(paper~3.0)")
	b.ReportMetric(tira/1e6, "tira-Mops(paper~2.3)")
	b.ReportMetric(100*(met/tira-1), "advantage-%(paper=31)")
}

// BenchmarkFig6Elasticity regenerates Figure 6: node counts and
// scale-down behaviour over both phases.
func BenchmarkFig6Elasticity(b *testing.B) {
	var r *Elasticity
	for i := 0; i < b.N; i++ {
		r = RunElasticity(11)
	}
	b.ReportMetric(float64(r.MeT.PeakNodes), "met-peak-nodes(paper=9)")
	b.ReportMetric(float64(r.Tiramola.PeakNodes), "tira-peak-nodes(paper=11)")
	b.ReportMetric(float64(r.MeT.FinalNodes), "met-final-nodes(paper=6)")
	b.ReportMetric(float64(r.Tiramola.FinalNodes), "tira-final-nodes")
}

// --- concurrent serving path benches ----------------------------------

// newServingCluster builds a loaded 3-server cluster for the parallel
// benchmarks: one pre-split table, 10k rows of 128 B.
func newServingCluster(b *testing.B) *Cluster {
	b.Helper()
	cluster, err := NewCluster(3)
	if err != nil {
		b.Fatal(err)
	}
	if err := cluster.CreateTable("bench", []string{"user2500", "user5000", "user7500"}); err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 128)
	for i := 0; i < 10000; i++ {
		if err := cluster.Put("bench", benchKey(i), val); err != nil {
			b.Fatal(err)
		}
	}
	return cluster
}

func benchKey(i int) string { return fmt.Sprintf("user%04d", i%10000) }

// benchSeeds hands every RunParallel goroutine its own RNG stream.
var benchSeeds atomic.Uint64

// BenchmarkParallelGet measures the read path under goroutine fan-out.
// Compare -cpu=1 with -cpu=8 to see the RWMutex + sorted-index + atomic
// counter refactor: reads share every lock on the hot path, so ops/sec
// must scale with goroutines instead of flat-lining behind one mutex.
func BenchmarkParallelGet(b *testing.B) {
	cluster := newServingCluster(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := sim.NewRNG(benchSeeds.Add(1))
		for pb.Next() {
			if _, err := cluster.Get("bench", benchKey(rng.Intn(10000))); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkParallelPut measures the write path under fan-out. Writers to
// the same region still serialize on its store (HBase's contract), but
// writers to different regions proceed independently.
func BenchmarkParallelPut(b *testing.B) {
	cluster := newServingCluster(b)
	val := make([]byte, 128)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := sim.NewRNG(benchSeeds.Add(1))
		for pb.Next() {
			if err := cluster.Put("bench", benchKey(rng.Intn(10000)), val); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkParallelScan measures short range scans (10 rows) under
// fan-out; scans hold a store's read lock for the whole iteration, so
// they exercise reader-reader sharing hardest.
func BenchmarkParallelScan(b *testing.B) {
	cluster := newServingCluster(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := sim.NewRNG(benchSeeds.Add(1))
		for pb.Next() {
			if _, _, err := cluster.Scan("bench", benchKey(rng.Intn(10000)), "", 10); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// --- ablation benches (DESIGN.md section 5) ---------------------------

// BenchmarkAblationAddPolicy compares Algorithm 1's quadratic node
// addition against linear addition: iterations to reach a demanded size
// and the over-provisioning incurred.
func BenchmarkAblationAddPolicy(b *testing.B) {
	need := 8 // the paper's own worked example
	var quadIters, quadOver, linIters int
	for i := 0; i < b.N; i++ {
		// Quadratic: 1, 2, 4, 8...
		size, step, iters, over := 0, 1, 0, 0
		for size < need {
			size += step
			step *= 2
			iters++
		}
		over = size - need
		quadIters, quadOver = iters, over
		// Linear: 1 per iteration.
		linIters = need
	}
	b.ReportMetric(float64(quadIters), "quad-iters(paper=4)")
	b.ReportMetric(float64(quadOver), "quad-overprovision(paper=7)")
	b.ReportMetric(float64(linIters), "linear-iters(paper=8)")
}

// BenchmarkAblationAssignment compares LPT against first-fit and
// round-robin on the paper's hotspot load shape, reporting makespan
// imbalance (1.0 = perfect).
func BenchmarkAblationAssignment(b *testing.B) {
	rng := sim.NewRNG(3)
	parts := make([]placement.Partition, 24)
	for i := range parts {
		// Hotspot-ish loads: a few heavy, many light.
		load := int64(100)
		if i%4 == 0 {
			load = 340
		} else if i%4 == 1 {
			load = 260
		}
		load += int64(rng.Intn(20))
		parts[i] = placement.Partition{Name: fmt.Sprintf("p%02d", i),
			Requests: metrics.RequestCounts{Reads: load}}
	}
	nodes := []string{"n0", "n1", "n2", "n3", "n4", "n5"}
	var lpt, ff, rr float64
	for i := 0; i < b.N; i++ {
		lpt = placement.AssignLPT(nodes, parts, 4).Imbalance()
		ff = placement.AssignFirstFit(nodes, parts, 4).Imbalance()
		rr = placement.AssignRoundRobin(nodes, parts).Imbalance()
	}
	b.ReportMetric(lpt, "lpt-imbalance")
	b.ReportMetric(ff, "firstfit-imbalance")
	b.ReportMetric(rr, "roundrobin-imbalance")
}

// BenchmarkAblationOutputComputation compares Algorithm 3's
// set-intersection matching against naive re-placement, reporting
// partition moves saved.
func BenchmarkAblationOutputComputation(b *testing.B) {
	current := []placement.NodeState{
		{Node: "rs0", Type: placement.Read, Partitions: []string{"a", "b", "c", "d"}},
		{Node: "rs1", Type: placement.Write, Partitions: []string{"e", "f", "g"}},
		{Node: "rs2", Type: placement.Scan, Partitions: []string{"h", "i"}},
	}
	optimal := []placement.TargetSet{
		{Type: placement.Write, Partitions: []string{"e", "f", "g"}},
		{Type: placement.Read, Partitions: []string{"a", "b", "c", "i"}},
		{Type: placement.Scan, Partitions: []string{"h", "d"}},
	}
	var matched, naive int
	for i := 0; i < b.N; i++ {
		out := placement.ComputeOutput(current, optimal, false)
		matched = placement.ComputeDiff(current, out).PartitionMoves
		// Naive: apply sets to nodes in order, ignoring similarity.
		naiveOut := placement.ComputeOutput(current, optimal, true)
		naive = placement.ComputeDiff(current, naiveOut).PartitionMoves
	}
	b.ReportMetric(float64(matched), "moves-matched")
	b.ReportMetric(float64(naive), "moves-naive")
}

// BenchmarkAblationSmoothing measures decision stability under a load
// spike with and without exponential smoothing: how far one spiky sample
// moves the CPU estimate the Decision Maker sees.
func BenchmarkAblationSmoothing(b *testing.B) {
	var smoothed, raw float64
	for i := 0; i < b.N; i++ {
		s := metrics.NewSmoother(0.5)
		for j := 0; j < 5; j++ {
			s.Observe(0.50)
		}
		smoothed = s.Observe(1.0) // one spike sample
		raw = 1.0
	}
	b.ReportMetric(smoothed, "smoothed-estimate")
	b.ReportMetric(raw, "raw-estimate")
}

// BenchmarkAblationThresholds sweeps the classification read threshold
// and reports how many of the paper's workloads keep their intended
// group (Section 3.3's grouping).
func BenchmarkAblationThresholds(b *testing.B) {
	counters := map[string]metrics.RequestCounts{
		"A": {Reads: 50, Writes: 50}, "B": {Writes: 100}, "C": {Reads: 100},
		"D": {Reads: 5, Writes: 95}, "E": {Reads: 5, Writes: 5, Scans: 90},
		"F": {Reads: 100, Writes: 50}, // RMW counts read+write
	}
	intended := map[string]placement.AccessType{
		"A": placement.ReadWrite, "B": placement.Write, "C": placement.Read,
		"D": placement.Write, "E": placement.Scan, "F": placement.ReadWrite,
	}
	match := func(readTh float64) (n float64) {
		th := placement.Thresholds{ReadFraction: readTh, WriteFraction: 0.6, ScanFraction: 0.6}
		for w, c := range counters {
			if placement.Classify(c, th) == intended[w] {
				n++
			}
		}
		return n
	}
	var at60, at70 float64
	for i := 0; i < b.N; i++ {
		at60 = match(0.60)
		at70 = match(0.70)
	}
	b.ReportMetric(at60, "correct-at-60%")
	b.ReportMetric(at70, "correct-at-70%")
}

// BenchmarkAblationCompactThresholds measures the actuation cost of the
// locality thresholds: bytes compacted under the paper's 70/90 split vs
// compacting everything below 90 regardless of profile.
func BenchmarkAblationCompactThresholds(b *testing.B) {
	regions := []struct {
		locality float64
		bytes    float64
		write    bool
	}{
		{0.85, 1e9, true}, {0.75, 1e9, true}, {0.60, 1e9, true},
		{0.85, 1e9, false}, {0.95, 1e9, false},
	}
	var split, uniform float64
	for i := 0; i < b.N; i++ {
		split, uniform = 0, 0
		for _, r := range regions {
			th := 0.9
			if r.write {
				th = 0.7
			}
			if r.locality < th {
				split += r.bytes
			}
			if r.locality < 0.9 {
				uniform += r.bytes
			}
		}
	}
	b.ReportMetric(split/1e9, "GB-compacted-70/90")
	b.ReportMetric(uniform/1e9, "GB-compacted-uniform90")
}
