package met

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"met/internal/hbase"
	"met/internal/kv"
)

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0); err == nil {
		t.Fatal("zero-node cluster accepted")
	}
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Master.Servers()) != 2 {
		t.Fatalf("servers = %d", len(c.Master.Servers()))
	}
}

func TestClusterCRUDRoundTrip(t *testing.T) {
	c, _ := NewCluster(2)
	if err := c.CreateTable("t", []string{"m"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := c.Put("t", fmt.Sprintf("k%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := c.Get("t", "k25")
	if err != nil || v[0] != 25 {
		t.Fatalf("get = %v, %v", v, err)
	}
	keys, values, err := c.Scan("t", "k10", "k20", -1)
	if err != nil || len(keys) != 10 || len(values) != 10 {
		t.Fatalf("scan = %d keys, %v", len(keys), err)
	}
	if err := c.Delete("t", "k25"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("t", "k25"); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("deleted key err = %v", err)
	}
}

func TestDefaultConfigsValid(t *testing.T) {
	if err := DefaultServerConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for ty, cfg := range Table1Profiles() {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%v profile: %v", ty, err)
		}
	}
	p := DefaultParams()
	if p.SubOptimalNodesThreshold != 0.5 || p.MinSamples != 6 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
}

func TestControllerOverPublicAPI(t *testing.T) {
	c, _ := NewCluster(3)
	for _, tbl := range []string{"reads", "writes"} {
		if err := c.CreateTable(tbl, []string{"m"}); err != nil {
			t.Fatal(err)
		}
	}
	params := DefaultParams()
	params.MinSamples = 2
	params.MinNodes = 3
	params.MaxNodes = 3
	ctrl := NewController(c, params, 10)
	for round := 0; round < 3; round++ {
		for i := 0; i < 200; i++ {
			key := fmt.Sprintf("k%03d", i)
			c.Put("writes", key, []byte("v"))
			c.Put("reads", key, []byte("v"))
			c.Get("reads", key)
			c.Get("reads", key)
		}
		ctrl.Tick(0)
	}
	if err := ctrl.Err(); err != nil {
		t.Fatal(err)
	}
	if ctrl.Actuations() == 0 {
		t.Fatal("controller never actuated under load")
	}
	configs := map[string]bool{}
	for _, rs := range c.Master.Servers() {
		configs[rs.Config().String()] = true
	}
	if len(configs) < 2 {
		t.Fatal("cluster still homogeneous")
	}
	// Data remains available.
	if _, err := c.Get("reads", "k005"); err != nil {
		t.Fatal(err)
	}
}

func TestAccessTypeConstants(t *testing.T) {
	profiles := Table1Profiles()
	if profiles[Read].BlockBytes != 32<<10 || profiles[Scan].BlockBytes != 128<<10 {
		t.Fatal("profile constants wired wrong")
	}
	if profiles[Write].MemstoreFraction != 0.55 || profiles[ReadWrite].BlockCacheFraction != 0.45 {
		t.Fatal("profile fractions wired wrong")
	}
}

func TestExperimentAliases(t *testing.T) {
	// Types are aliases, so results interoperate with internal/exp.
	var _ *Figure1
	var _ *Figure4
	var _ *Table2
	var _ *Elasticity
	var _ ServerConfig = hbase.DefaultServerConfig()
}

func TestPrintAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole evaluation")
	}
	var sb strings.Builder
	PrintAll(&sb, 1)
	out := sb.String()
	for _, want := range []string{"Figure 1", "Figure 4", "Table 2", "Figure 5", "Figure 6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}
