// Package met is the public API of the MeT reproduction (Cruz et al.,
// "MeT: workload aware elasticity for NoSQL", EuroSys 2013): a
// workload-aware elasticity controller for an HBase-style NoSQL store,
// together with the full substrate it manages — a functional mini-HBase
// (regions, region servers, block cache / memstore / block-size tuning,
// HDFS-style locality), YCSB and TPC-C workload generators, and the
// simulated deployment used to reproduce the paper's evaluation.
//
// Three layers are exposed:
//
//   - NewCluster / Cluster: a working single-process HBase-like database
//     with a put/get/delete/scan client;
//   - NewController: MeT itself (Monitor, Decision Maker, Actuator) over
//     a functional cluster;
//   - the experiment runners (RunFigure1, RunFigure4, RunTable2,
//     RunElasticity) that regenerate every table and figure of the
//     paper's evaluation on the performance-model deployment.
//
// # Choosing a storage backend
//
// Region stores run on one of two backends, selected per server by
// ServerConfig.DataDir:
//
//   - In-memory (DataDir == "", the default): data lives in the
//     memstore and heap-resident store files. Fast and hermetic — what
//     the paper's simulated experiments and most tests use. A process
//     exit loses everything.
//   - Durable (DataDir set): each region persists to its own directory
//     under DataDir — a group-committed, CRC-framed write-ahead log
//     plus SSTable block files with bloom filters (met/internal/
//     durable). Puts are acknowledged only after an fsync; restarts and
//     crashes recover every acknowledged write from disk. Use
//     NewClusterConfig to build a durable cluster, or `metbench
//     -durable DIR` to drive one under YCSB load.
//
// # Cold start
//
// A durable cluster persists more than region data: its *layout* —
// server membership and per-server configs, table schemas, region
// bounds and the region→server assignment — is written through to a
// META catalog, itself a durable kv store under DataDir/meta (HBase's
// META table, one level down; see met/internal/hbase/catalog.go for
// the row format and commit ordering). After a crash or clean stop,
//
//	cluster, err := met.OpenCluster(dataDir)
//
// rebuilds the entire cluster from the data directory alone: servers
// are re-created with their persisted configurations, every region
// store reopens from its own directory (WAL replay recovers every
// acknowledged write), and client routing works immediately — no
// CreateTable, no manual assignment. Operations that crashed before
// their catalog commit point are cleanly absent, never half-applied.
// `metbench -coldstart -durable DIR` drives this end to end: it
// hard-stops a loaded cluster mid-run, reopens it, and verifies every
// acknowledged write is readable through normal routing.
//
// # Replication & snapshots
//
// On the durable backend, region data is really replicated: each
// region server owns a replicator (met/internal/replication) that
// ships every flushed or compacted SSTable to the region's follower
// servers — chosen by the HDFS layer's replica placement and recorded
// in the META catalog — under DataDir/replica/<follower>/<region>.
// Shipping runs in the background, charged to the compaction I/O
// budget, so it yields to serving. When a server dies,
//
//	report, err := cluster.RecoverServer(name)
//
// reopens its regions on the followers holding their replica copies —
// from the copies alone, never the dead server's own directories —
// and reports exactly how many acknowledged writes the replicas did
// not cover (the unflushed memstore; zero after a clean flush with
// replication quiesced). Loss is always reported, never silent.
//
// Snapshots are the same machinery pointed at time instead of
// failure: Cluster.Snapshot(table, name) archives every region's
// SSTable set (plus its WAL high-water mark) under DataDir/snapshots
// and commits a manifest row; RestoreSnapshot(table, name) rebuilds
// the table to exactly that point — later writes gone, deletes
// undone — with the same atomic table-row commit discipline as splits
// and cold starts. `metbench -failover -durable DIR` drives the
// kill-and-recover path end to end (and CI gates on it under -race):
// it hard-kills a server, renames its primary region directories away,
// and requires 100% of acknowledged rows back from replicas with zero
// reported loss.
//
// On either backend, compaction runs in the background: each region
// server owns a compactor pool (met/internal/compaction) that merges
// store files off the engine locks, with a pluggable tiered/leveled
// policy and a token-bucket I/O budget shared with the serving path, so
// Puts keep flowing while heavy maintenance runs — the property MeT's
// actuator-issued major compactions depend on. Tune it per server via
// ServerConfig.Compaction (soft/hard file thresholds, policy, budget
// bytes/sec, worker count; write stalls are reported in the engine
// stats, never hidden). `metbench -sustained -durable DIR` drives the
// write-heavy scenario that keeps the compactor busy and reports
// flush/compaction/stall/write-amplification counters in its -json
// output.
//
// # Networked cluster
//
// Everything above runs the cluster in one process. The RPC layer
// (met/internal/rpc) and the metnode command turn the same durable
// data directory into a real multi-process deployment: one layout
// master process owning the META catalog, plus one region-server
// process per catalog member, talking HTTP — a JSON control plane for
// registration/layout/recovery and a length-prefixed binary data plane
// for get/put/delete/scan. Exactly one process owns each WAL: workers
// never open the catalog, they fetch a manifest (config, assigned
// regions, routing epoch) from the master at startup instead.
//
//	metnode -role master -data DIR
//	metnode -role server -name rs0 -master HOST:PORT
//
// Clients (rpc.Dial) cache the master's layout and route each key
// straight to its hosting worker. Every layout change bumps a routing
// epoch; a request carrying a stale epoch bounces with 409 and the
// client transparently re-fetches and retries, the same path that
// absorbs connection-refused when a worker dies. Deadlines propagate
// on the wire (X-Met-Deadline), so a slow server gives up exactly when
// its caller does, and every node serves /healthz, /readyz and
// /metrics with graceful drain on SIGTERM — in-flight requests finish,
// acknowledged writes are never truncated. When a worker process is
// killed outright, the master re-plans its regions from the shared
// disk's replica copies and directs surviving workers to adopt them
// (the networked RecoverServer). `metbench -procs 3 -failover -durable
// DIR` drives all of it with real OS processes and kill -9, and CI
// gates on the loss bounds: zero after a replication quiesce, tail-lag
// bounded mid-burst.
//
// # Observability
//
// Every cluster carries an always-on telemetry layer (met/internal/obs):
// lock-free HDR-style latency histograms record every Get/Put/Scan at
// both server and region level, plus every engine-side duration — WAL
// fsync rounds, memstore flushes, compactions, replication SSTable
// ships and WAL-tail ships. Percentiles (p50/p95/p99/p999) come from
// mergeable snapshots, so recording costs ~15ns per op and never locks.
//
//	srv, err := cluster.ServeDebug("127.0.0.1:6060")
//
// starts the opt-in HTTP debug plane: /metrics (Prometheus text
// exposition of the full series set), /healthz (non-200 while any
// server is stopped), /debug/slowops (JSON), /debug/vars (expvar) and
// /debug/pprof. Setting ServerConfig.SlowOpThreshold additionally arms
// per-op tracing: an operation slower than the threshold lands in the
// server's bounded slow-op ring with per-stage spans (routing,
// memstore, bloom, block cache, SSTable reads, WAL append/sync) —
// RegionServer.SlowOps returns them, the debug plane serves them.
// `metbench -slowlog 10ms -debug-addr :6060` wires both into the
// benchmark, and its -json output carries the full percentile tables.
package met

import (
	"fmt"
	"io"

	"met/internal/core"
	"met/internal/exp"
	"met/internal/hbase"
	"met/internal/hdfs"
	"met/internal/obs"
	"met/internal/placement"
	"met/internal/sim"
)

// Re-exported substrate types for embedding users.
type (
	// Cluster bundles a functional HBase-like deployment.
	Cluster struct {
		Master *hbase.Master
		Client *hbase.Client
	}
	// ServerConfig is a region server's tuning (cache / memstore /
	// block size / handlers).
	ServerConfig = hbase.ServerConfig
	// Controller is the MeT control loop over a functional cluster.
	Controller = core.Controller
	// Params are MeT's decision parameters.
	Params = core.Params
	// AccessType is a workload access-pattern class.
	AccessType = placement.AccessType
	// RecoveryReport is RecoverServer's accounting: which regions were
	// reopened from which follower's replica SSTables, and exactly how
	// many acknowledged writes the replicas did not cover.
	RecoveryReport = hbase.RecoveryReport
)

// Access pattern classes (Table 1 profiles exist for each).
const (
	ReadWrite = placement.ReadWrite
	Read      = placement.Read
	Write     = placement.Write
	Scan      = placement.Scan
)

// Sentinel errors re-exported for embedders steering cluster lifecycle.
var (
	// ErrClusterExists: NewClusterConfig's DataDir already holds a
	// committed cluster; cold-start it with OpenCluster instead.
	ErrClusterExists = hbase.ErrClusterExists
	// ErrTableExists: the table name is taken — typically because a
	// cold start already recovered it.
	ErrTableExists = hbase.ErrTableExists
)

// DefaultServerConfig returns an out-of-the-box tuned homogeneous node
// configuration.
func DefaultServerConfig() ServerConfig { return hbase.DefaultServerConfig() }

// Table1Profiles returns the paper's per-group node profiles.
func Table1Profiles() map[AccessType]ServerConfig { return core.Table1Profiles() }

// DefaultParams returns the paper's Decision Maker parameters.
func DefaultParams() Params { return core.DefaultParams() }

// NewCluster creates a functional cluster with n homogeneous region
// servers (each co-located with an HDFS datanode, replication factor 2).
func NewCluster(n int) (*Cluster, error) {
	return NewClusterConfig(n, hbase.DefaultServerConfig())
}

// NewClusterConfig creates a functional cluster with n region servers
// sharing cfg. Setting cfg.DataDir puts every region store on the
// durable disk backend (WAL + SSTables, crash recovery); leaving it
// empty keeps the in-memory simulation backend.
func NewClusterConfig(n int, cfg ServerConfig) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("met: cluster needs at least one server, got %d", n)
	}
	nn := hdfs.NewNamenode(2)
	var m *hbase.Master
	if cfg.DataDir != "" {
		// A durable cluster persists its own layout: the META catalog
		// under DataDir records server membership, table schemas and the
		// region assignment, so the whole cluster can later cold-start
		// with OpenCluster(DataDir) alone.
		var err error
		m, err = hbase.NewDurableMaster(nn, cfg.DataDir)
		if err != nil {
			return nil, err
		}
	} else {
		m = hbase.NewMaster(nn)
	}
	for i := 0; i < n; i++ {
		if _, err := m.AddServer(fmt.Sprintf("rs%d", i), cfg); err != nil {
			return nil, err
		}
	}
	return &Cluster{Master: m, Client: hbase.NewClient(m)}, nil
}

// OpenCluster cold-starts a previously durable cluster from its data
// directory alone: the META catalog is replayed, every region server is
// re-created with its persisted configuration, every region store is
// reopened from disk (recovering all acknowledged writes), and routing
// is rebuilt — no CreateTable or manual assignment needed. See the
// "Cold start" section of the package documentation.
func OpenCluster(dataDir string) (*Cluster, error) {
	m, err := hbase.OpenCluster(dataDir)
	if err != nil {
		return nil, err
	}
	return &Cluster{Master: m, Client: hbase.NewClient(m)}, nil
}

// CreateTable creates a pre-split table; n split keys make n+1 regions.
func (c *Cluster) CreateTable(name string, splitKeys []string) error {
	_, err := c.Master.CreateTable(name, splitKeys)
	return err
}

// Put writes a value (atomic, immediately visible to readers).
func (c *Cluster) Put(table, key string, value []byte) error {
	return c.Client.Put(table, key, value)
}

// Get reads the newest value of key.
func (c *Cluster) Get(table, key string) ([]byte, error) {
	return c.Client.Get(table, key)
}

// Delete removes a key.
func (c *Cluster) Delete(table, key string) error {
	return c.Client.Delete(table, key)
}

// Scan returns up to limit entries in [start, end) as key/value pairs.
func (c *Cluster) Scan(table, start, end string, limit int) (keys []string, values [][]byte, err error) {
	entries, err := c.Client.Scan(table, start, end, limit)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		keys = append(keys, e.Key)
		values = append(values, e.Value)
	}
	return keys, values, nil
}

// Snapshot archives a point-in-time copy of a table — the exact
// SSTable set of every region plus its WAL high-water mark — committed
// as one fsynced META manifest row. Durable clusters only.
func (c *Cluster) Snapshot(table, name string) error {
	return c.Master.Snapshot(table, name)
}

// RestoreSnapshot rebuilds a table to a committed snapshot's exact
// contents: writes after the snapshot are gone, deleted rows are back.
// The switch is one atomic table-row commit; a crash on either side
// leaves a complete table.
func (c *Cluster) RestoreSnapshot(table, name string) error {
	return c.Master.RestoreSnapshot(table, name)
}

// RecoverServer fails over a dead (stopped) server: its regions reopen
// on the followers holding their replica SSTables, and the report
// counts precisely the acknowledged writes the replicas did not cover
// — zero after a clean flush with replication quiesced.
func (c *Cluster) RecoverServer(name string) (*RecoveryReport, error) {
	return c.Master.RecoverServer(name)
}

// ServeDebug starts the cluster's HTTP debug plane on addr (host:port;
// ":0" picks a free port — read it back from DebugServer.Addr). It
// serves /metrics (Prometheus text exposition), /healthz,
// /debug/slowops, /debug/vars and /debug/pprof until Close. Purely
// opt-in: a cluster that never calls ServeDebug opens no sockets.
func (c *Cluster) ServeDebug(addr string) (*obs.DebugServer, error) {
	return obs.ServeDebug(addr, c.Master.DebugConfig())
}

// NewController attaches MeT to a functional cluster. nominalOpsPerSec
// calibrates the synthetic CPU metric of the functional layer (the
// request rate one node counts as fully busy).
func NewController(c *Cluster, params Params, nominalOpsPerSec float64) *Controller {
	src := core.NewClusterSource(c.Master, nominalOpsPerSec, 30*sim.Second)
	mon := core.NewMonitor(src, 0.5)
	profiles := core.Table1Profiles()
	dm := core.NewDecisionMaker(params, profiles)
	act := core.NewFunctionalActuator(c.Master, mon, params, profiles)
	return core.NewController(mon, dm, act)
}

// Experiment result aliases.
type (
	// Figure1 is the motivation experiment's result.
	Figure1 = exp.Fig1Result
	// Figure4 is the convergence experiment's result.
	Figure4 = exp.Fig4Result
	// Table2 is the TPC-C versatility experiment's result.
	Table2 = exp.Table2Result
	// Elasticity is the Figure 5/6 experiment's result.
	Elasticity = exp.ElasticityResult
)

// RunFigure1 regenerates Figure 1 (manual strategies, percentiles over
// `runs` 30-minute runs).
func RunFigure1(runs int, seed uint64) *Figure1 { return exp.RunFig1(runs, seed) }

// RunFigure4 regenerates Figure 4 (MeT convergence vs manual configs).
func RunFigure4(seed uint64) *Figure4 { return exp.RunFig4(seed) }

// RunTable2 regenerates Table 2 (PyTPCC average throughput).
func RunTable2(seed uint64) *Table2 { return exp.RunTable2(seed) }

// RunElasticity regenerates Figures 5 and 6 (MeT vs Tiramola).
func RunElasticity(seed uint64) *Elasticity { return exp.RunElasticity(seed) }

// PrintAll runs every experiment and writes the full evaluation report.
func PrintAll(w io.Writer, seed uint64) {
	RunFigure1(5, seed).Print(w)
	fmt.Fprintln(w)
	RunFigure4(seed).Print(w)
	fmt.Fprintln(w)
	RunTable2(seed).Print(w)
	fmt.Fprintln(w)
	RunElasticity(seed).Print(w)
}
